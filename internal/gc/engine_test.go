package gc

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeCollector reclaims one block per CollectOne from a bounded pool of
// reclaimable garbage, under its own lock like the real store.
type fakeCollector struct {
	mu          sync.Mutex
	free        int
	reclaimable int
	calls       int
	err         error
}

func (f *fakeCollector) CollectOne() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.err != nil {
		return false, f.err
	}
	if f.reclaimable == 0 {
		return false, nil
	}
	f.reclaimable--
	f.free++
	return true, nil
}

func (f *fakeCollector) FreeBlocks() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.free
}

// drain allocates n free blocks away, as foreground writers would.
func (f *fakeCollector) drain(n int) {
	f.mu.Lock()
	f.free -= n
	f.reclaimable += n
	f.mu.Unlock()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEngineCollectsToHighWater(t *testing.T) {
	f := &fakeCollector{free: 2, reclaimable: 10}
	e := New(f, Config{LowWater: 3, HighWater: 6})
	e.Start()
	defer e.Stop()

	e.Kick()
	waitFor(t, "high watermark", func() bool { return f.FreeBlocks() >= 6 })
	if got := f.FreeBlocks(); got != 6 {
		t.Errorf("FreeBlocks = %d after collection, want exactly the high watermark 6", got)
	}
	st := e.Stats()
	if st.Wakeups != 1 || st.Collected != 4 {
		t.Errorf("Stats = %+v, want 1 wakeup collecting 4 blocks", st)
	}
}

func TestEngineIgnoresSpuriousKicks(t *testing.T) {
	f := &fakeCollector{free: 10, reclaimable: 5}
	e := New(f, Config{LowWater: 3, HighWater: 6})
	e.Start()
	defer e.Stop()

	for i := 0; i < 5; i++ {
		e.Kick()
	}
	time.Sleep(20 * time.Millisecond)
	f.mu.Lock()
	calls := f.calls
	f.mu.Unlock()
	if calls != 0 {
		t.Errorf("engine collected %d times while above the low watermark", calls)
	}
	if st := e.Stats(); st.Wakeups != 0 {
		t.Errorf("Wakeups = %d, want 0", st.Wakeups)
	}
}

func TestEngineStopsWhenNothingReclaimable(t *testing.T) {
	f := &fakeCollector{free: 1, reclaimable: 2}
	e := New(f, Config{LowWater: 3, HighWater: 8})
	e.Start()
	defer e.Stop()

	e.Kick()
	waitFor(t, "reclaimable pool drained", func() bool { return f.FreeBlocks() == 3 })
	// Free stays below HighWater but the engine must park, not spin.
	time.Sleep(10 * time.Millisecond)
	f.mu.Lock()
	calls := f.calls
	f.mu.Unlock()
	if calls != 3 { // 2 reclaims + 1 empty probe
		t.Errorf("calls = %d, want 3 (engine must park when nothing is reclaimable)", calls)
	}
}

func TestEngineErrorIsStickyAndStopsCollection(t *testing.T) {
	boom := errors.New("boom")
	f := &fakeCollector{free: 0, reclaimable: 5, err: boom}
	e := New(f, Config{LowWater: 3, HighWater: 4})
	e.Start()

	e.Kick()
	waitFor(t, "sticky error", func() bool { return e.Err() != nil })
	if !errors.Is(e.Err(), boom) {
		t.Errorf("Err = %v, want %v", e.Err(), boom)
	}
	if err := e.Stop(); !errors.Is(err, boom) {
		t.Errorf("Stop = %v, want the sticky error", err)
	}
	// Kicks after the error (engine goroutine exited) must not block.
	e.Kick()
	e.Kick()
}

func TestStopIsIdempotentAndSafeBeforeStart(t *testing.T) {
	e := New(&fakeCollector{}, Config{})
	if err := e.Stop(); err != nil {
		t.Fatalf("Stop before Start: %v", err)
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	e.Kick() // must not block or panic after Stop

	e2 := New(&fakeCollector{free: 10}, Config{})
	e2.Start()
	if err := e2.Stop(); err != nil {
		t.Fatalf("Stop after Start: %v", err)
	}
	if err := e2.Stop(); err != nil {
		t.Fatalf("repeat Stop after Start: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(&fakeCollector{}, Config{LowWater: 0, HighWater: 0})
	cfg := e.Config()
	if cfg.LowWater < 1 || cfg.HighWater <= cfg.LowWater {
		t.Errorf("Config = %+v, want LowWater >= 1 and HighWater > LowWater", cfg)
	}
}

func TestConcurrentKicksUnderLoad(t *testing.T) {
	f := &fakeCollector{free: 6, reclaimable: 0}
	e := New(f, Config{LowWater: 3, HighWater: 5})
	e.Start()
	defer e.Stop()

	// Several goroutines drain and kick concurrently; the engine must keep
	// the pool near the watermark without races (run under -race).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f.drain(1)
				e.Kick()
				time.Sleep(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	e.Kick()
	// The pool must recover above the low watermark. (Exactly where it
	// settles depends on timing: a final kick at a level between the
	// watermarks is deliberately ignored.)
	waitFor(t, "pool recovery", func() bool { return f.FreeBlocks() > 3 })
}
