package gc

import "errors"

// MultiEngine runs one Engine — one collection goroutine, one watermark
// state machine — per flash channel. Each engine drives its own
// Collector, which collects victims of exactly one channel under that
// channel's serialization, so K channels reclaim space in parallel: a
// hot channel collecting does not stall allocation (or collection) on
// the others. Over a single-channel device the MultiEngine degenerates
// to one Engine and behaves exactly like PR 3's background collector.
//
// Watermarks are per channel: each engine compares its channel's erased
// block count against the same Config. Errors stay sticky per engine;
// Err surfaces the first one found (lowest channel index wins) and Stop
// joins all of them.
type MultiEngine struct {
	engines []*Engine
}

// NewMulti builds one engine per collector, all sharing cfg. The
// collector at index ch must confine itself to channel ch.
func NewMulti(collectors []Collector, cfg Config) *MultiEngine {
	m := &MultiEngine{engines: make([]*Engine, len(collectors))}
	for i, c := range collectors {
		m.engines[i] = New(c, cfg)
	}
	return m
}

// Channels returns the number of per-channel engines.
func (m *MultiEngine) Channels() int { return len(m.engines) }

// Engine returns channel ch's engine (tests and diagnostics).
func (m *MultiEngine) Engine(ch int) *Engine { return m.engines[ch] }

// Start launches every per-channel goroutine.
func (m *MultiEngine) Start() {
	for _, e := range m.engines {
		e.Start()
	}
}

// Kick nudges channel ch's engine. Like Engine.Kick it never blocks.
func (m *MultiEngine) Kick(ch int) { m.engines[ch].Kick() }

// KickAll nudges every channel's engine (store close/flush paths that
// want any pending reclamation to proceed).
func (m *MultiEngine) KickAll() {
	for _, e := range m.engines {
		e.Kick()
	}
}

// Stop shuts every engine down, waits for all goroutines to exit, and
// joins their sticky errors.
func (m *MultiEngine) Stop() error {
	errs := make([]error, len(m.engines))
	for i, e := range m.engines {
		errs[i] = e.Stop()
	}
	return errors.Join(errs...)
}

// Err returns the first sticky collection error across channels, or nil.
func (m *MultiEngine) Err() error {
	for _, e := range m.engines {
		if err := e.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Stats sums the per-channel engine stats.
func (m *MultiEngine) Stats() Stats {
	var s Stats
	for _, e := range m.engines {
		es := e.Stats()
		s.Wakeups += es.Wakeups
		s.Collected += es.Collected
	}
	return s
}

// ChannelStats returns channel ch's engine stats.
func (m *MultiEngine) ChannelStats(ch int) Stats { return m.engines[ch].Stats() }
