package vetkit

import "testing"

// TestLoadSmoke loads the repository itself through the export-data
// loader: every package must parse and type-check offline.
func TestLoadSmoke(t *testing.T) {
	pkgs, err := Load("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; loader is dropping units", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.Files) == 0 {
			t.Errorf("package %s loaded with no files", p.PkgPath)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("package %s loaded without type information", p.PkgPath)
		}
	}
}
