// Package vetkit is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis: just enough framework to write typed
// static analyzers against the standard library's go/ast and go/types,
// load packages offline through the go command's export data, run under
// `go vet -vettool` via the unitchecker config protocol, and test
// analyzers against analysistest-style `// want` corpora.
//
// The module deliberately vendors no third-party code: analyzers here
// guard the repository's concurrency invariants, and the tool that
// checks the tree must build from a bare toolchain (CI included) with
// `go build ./cmd/pdlvet` and nothing else.
//
// The shape mirrors go/analysis on purpose — Analyzer with a Run over a
// Pass carrying Fset/Files/Pkg/TypesInfo and a Report callback — so the
// analyzers port to the upstream framework mechanically if the
// dependency ever becomes available.
package vetkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -json output, and
	// //pdlvet:ignore suppressions. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is the summary.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package being
// analyzed, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String formats the diagnostic in the go vet style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics: suppressed findings (see ignore.go) are dropped, findings
// in _test.go files are dropped (tests intentionally reach into
// internals the invariants govern), and the rest are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		ig := ignoresOf(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				if strings.HasSuffix(d.Pos.Filename, "_test.go") {
					continue
				}
				if ig.suppressed(a.Name, d.Pos) {
					continue
				}
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	// Dedup exact repeats: abstract interpretation may visit a program
	// point more than once (loop bodies get a second iteration) and the
	// same finding must surface once.
	seen := make(map[Diagnostic]bool, len(all))
	out := all[:0]
	for _, d := range all {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out, nil
}
