// Package vettest runs vetkit analyzers over analysistest-style
// corpora: a testdata/src tree of small packages whose lines carry
// `// want "regexp"` comments naming the diagnostics the analyzer must
// report there. The corpus is copied into a throwaway module (module
// path "p") so intra-corpus imports like "p/flash" resolve, loaded with
// the same offline loader the pdlvet driver uses, and the reported
// diagnostics are matched one-to-one against the expectations: a
// missing finding, an extra finding, and a finding with the wrong
// message are all test failures.
package vettest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pdl/internal/analysis/vetkit"
)

// expectation is one `// want` clause: a line that must receive a
// diagnostic matching re.
type expectation struct {
	file string // path relative to the corpus root
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run copies the corpus at srcdir (conventionally "testdata/src") into
// a fresh module and checks analyzers' diagnostics over the named
// packages (paths relative to the corpus root, e.g. "lockorder")
// against the corpus's want comments.
func Run(t *testing.T, srcdir string, analyzers []*vetkit.Analyzer, pkgs ...string) {
	t.Helper()
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module p\n\ngo 1.24\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := copyTree(srcdir, mod); err != nil {
		t.Fatalf("copying corpus: %v", err)
	}
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "p/" + p
	}
	loaded, err := vetkit.Load(mod, patterns...)
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}

	var wants []*expectation
	for _, pkg := range loaded {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			rel, err := filepath.Rel(mod, name)
			if err != nil {
				t.Fatal(err)
			}
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := parseWants(rel, src)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	diags, err := vetkit.Run(loaded, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		rel, err := filepath.Rel(mod, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		matched := false
		for _, w := range wants {
			if w.hit || w.file != rel || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", rel, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// copyTree copies the directory tree at src into dst.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o666)
	})
}

// wantRE matches one quoted regexp of a want clause: a Go interpreted
// or raw string literal.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts expectations from one file's source text: each
// `// want "re" ...` comment attaches to its own line.
func parseWants(rel string, src []byte) ([]*expectation, error) {
	var out []*expectation
	for i, lineText := range strings.Split(string(src), "\n") {
		_, rest, ok := strings.Cut(lineText, "// want ")
		if !ok {
			continue
		}
		matches := wantRE.FindAllString(rest, -1)
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s:%d: malformed want comment (no quoted regexp)", rel, i+1)
		}
		for _, m := range matches {
			var pat string
			if m[0] == '`' {
				pat = m[1 : len(m)-1]
			} else {
				var err error
				pat, err = strconv.Unquote(m)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string %s: %v", rel, i+1, m, err)
				}
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", rel, i+1, pat, err)
			}
			out = append(out, &expectation{file: rel, line: i + 1, re: re})
		}
	}
	return out, nil
}
