package vetkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression and convention directives, in the spirit of //lint: and
// //go:build markers:
//
//	//pdlvet:ignore <analyzer> [reason...]
//
// on a finding's line (or the line above it) suppresses that analyzer's
// findings there; `//pdlvet:ignore all` suppresses every analyzer. The
// reason is free text for the reviewer — pdlvet never reports a
// suppression without one being written down in the source.
//
//	//pdlvet:holds <lock>[,<lock>...]
//
// on a function's doc comment declares the locking convention "the
// caller holds <lock>": analyzers seed the function's entry lock set
// with it, and lockorder requires resolvable callers to actually hold
// it. Lock names are the model's class names (e.g. shard, flash,
// channel, maptable, dcache, bus). The directive also attaches to a
// function literal — a comment ending on the line directly above the
// `func` keyword — declaring the locks whoever invokes the literal
// holds (a callback run under a lock its runner acquires).
const (
	ignoreDirective = "//pdlvet:ignore"
	holdsDirective  = "//pdlvet:holds"
)

// ignoreSet records, per file line, which analyzers are suppressed.
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names

// ignoresOf collects the //pdlvet:ignore directives of a package.
func ignoresOf(fset *token.FileSet, files []*ast.File) ignoreSet {
	ig := make(ignoreSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // malformed: no analyzer named, ignore the ignore
				}
				pos := fset.Position(c.Pos())
				byLine := ig[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					ig[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
	}
	return ig
}

// suppressed reports whether analyzer's finding at pos is covered by a
// directive on the same line or the line directly above.
func (ig ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	byLine := ig[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// HoldsOf parses the //pdlvet:holds directive of a function declaration,
// returning the declared lock class names (nil if none).
func HoldsOf(decl *ast.FuncDecl) []string {
	if decl.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range decl.Doc.List {
		out = appendHolds(out, c.Text)
	}
	return out
}

// HoldsOfLit parses a //pdlvet:holds directive attached to a function
// literal: a comment whose last line ends on the line directly above
// the literal's `func` keyword. Literals have no doc comment in the
// AST, so the attachment is positional, like //pdlvet:ignore.
func HoldsOfLit(fset *token.FileSet, file *ast.File, lit *ast.FuncLit) []string {
	litPos := fset.Position(lit.Pos())
	var out []string
	for _, cg := range file.Comments {
		end := fset.Position(cg.End())
		if end.Filename != litPos.Filename || end.Line != litPos.Line-1 {
			continue
		}
		for _, c := range cg.List {
			out = appendHolds(out, c.Text)
		}
	}
	return out
}

// appendHolds appends the lock names of one //pdlvet:holds comment line.
func appendHolds(out []string, text string) []string {
	rest, ok := strings.CutPrefix(text, holdsDirective)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return out
	}
	for _, f := range strings.Fields(rest) {
		for _, name := range strings.Split(f, ",") {
			if name != "" {
				out = append(out, name)
			}
		}
	}
	return out
}
