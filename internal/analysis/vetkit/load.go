package vetkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load loads and type-checks the packages matched by patterns (for
// example "./..."), rooted at dir, entirely offline: package metadata
// and compiler export data come from `go list -deps -export`, matched
// packages are parsed and type-checked from source, and their imports —
// including other matched packages — resolve through the export data,
// exactly as the compiler itself would see them.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFile := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pp := p
			targets = append(targets, &pp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: type checking: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath:   lp.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return out, nil
}

// newTypesInfo allocates a types.Info with every map analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
