package vetkit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// unitConfig is the JSON configuration the go command writes for each
// package when a vet tool runs under `go vet -vettool=...`. The field
// set follows the contract established by x/tools' unitchecker (the go
// command's side lives in cmd/go/internal/work); unknown fields are
// ignored so the protocol can grow without breaking the tool.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker implements the vet tool side of the protocol for one
// .cfg file: load and type-check the unit, run the analyzers, print
// findings to stderr in the `file:line:col: message` form the go
// command relays, and exit non-zero if anything was found. The facts
// file named by VetxOutput is always written (empty — these analyzers
// export no facts) because the go command caches and requires it.
func RunUnitchecker(cfgPath string, analyzers []*Analyzer) {
	code, err := runUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdlvet: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func runUnit(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := newTypesInfo()
	conf := types.Config{
		Importer:  unitImporter{cfg.ImportMap, gcImp},
		GoVersion: normalizeGoVersion(cfg.GoVersion),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type checking %s: %v", cfg.ImportPath, err)
	}

	diags, err := Run([]*Package{{
		PkgPath:   cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}}, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// normalizeGoVersion maps the config's GoVersion (which the go command
// may spell with or without the "go" prefix) to the "go1.N" form
// go/types expects, or empty to accept any version.
func normalizeGoVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	return v
}

// unitImporter resolves source-level import paths through the config's
// ImportMap before consulting the compiler export data.
type unitImporter struct {
	importMap map[string]string
	gc        types.Importer
}

func (u unitImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := u.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}
