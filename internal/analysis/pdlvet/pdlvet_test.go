package pdlvet

import (
	"testing"

	"pdl/internal/analysis/vetkit"
	"pdl/internal/analysis/vetkit/vettest"
)

func TestLockOrder(t *testing.T) {
	vettest.Run(t, "testdata/src", []*vetkit.Analyzer{LockOrder}, "lockorder")
}

func TestDeviceIO(t *testing.T) {
	vettest.Run(t, "testdata/src", []*vetkit.Analyzer{DeviceIO}, "deviceio", "deviceio/core")
}

func TestAtomicCounter(t *testing.T) {
	vettest.Run(t, "testdata/src", []*vetkit.Analyzer{AtomicCounter}, "atomiccounter")
}

func TestFencedCache(t *testing.T) {
	vettest.Run(t, "testdata/src", []*vetkit.Analyzer{FencedCache}, "fencedcache")
}
