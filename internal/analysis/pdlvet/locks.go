// Package pdlvet is the repository's invariant suite: static analyzers
// that machine-check the concurrency discipline PDL's correctness
// argument rests on — the documented lock hierarchy, the device-call
// discipline of the lock-free read path, the atomic-counter rules, and
// the decoded-differential cache's coherence protocol. The analyzers
// are built on internal/analysis/vetkit and run standalone via
// cmd/pdlvet or under `go vet -vettool`.
package pdlvet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"pdl/internal/analysis/vetkit"
)

// lockClass identifies one lock of the documented hierarchy
// (README "Architecture", core package comment):
//
//	kv bucket lock > shard lock > flash lock > channel lock > device bus lock > mapTable lock > diff-cache lock
//
// The kv bucket locks are the serving layer's outermost tier: a bucket
// operation faults pages through its pool, which re-enters the engine
// and takes shard locks below. The channel locks (core.storeChan.mu,
// one per flash channel) serialize each channel's allocation and
// program stream under the flash lock held shared; like the shard and
// bucket locks they are a family, taken in ascending channel-index
// order when a batch spans channels. The device bus locks
// (flash.Chip.mu, filedev.Device.mu) sit between the channel lock and
// the mapTable lock: programs run under the channel lock and every
// mapping commit happens after the device call returns, never inside
// it.
type lockClass int

const (
	classNone lockClass = iota
	classKV
	classShard
	classFlash
	classChannel
	classBus
	classMapTable
	classDCache
)

// rank orders the classes outermost (smallest) to innermost.
func (c lockClass) rank() int { return int(c) }

// multiInstance reports whether the class names a family of locks —
// one per shard, per kv bucket, or per flash channel — where holding
// two members at once is legal if (and only if) they are taken in
// ascending index order.
func (c lockClass) multiInstance() bool {
	return c == classShard || c == classKV || c == classChannel
}

func (c lockClass) String() string {
	switch c {
	case classKV:
		return "kv"
	case classShard:
		return "shard"
	case classFlash:
		return "flash"
	case classChannel:
		return "channel"
	case classBus:
		return "bus"
	case classMapTable:
		return "maptable"
	case classDCache:
		return "dcache"
	}
	return "none"
}

// classByName resolves a //pdlvet:holds name.
func classByName(name string) lockClass {
	for _, c := range []lockClass{classKV, classShard, classFlash, classChannel, classBus, classMapTable, classDCache} {
		if c.String() == name {
			return c
		}
	}
	return classNone
}

// lockModel maps (owning struct type name, mutex field name) to a lock
// class. Matching is by type and field name, not package path, so the
// analyzers work identically on the real tree and on testdata corpora
// that mirror its shapes.
var lockModel = map[[2]string]lockClass{
	{"bucket", "mu"}:     classKV,
	{"shard", "mu"}:      classShard,
	{"Store", "flashMu"}: classFlash,
	{"storeChan", "mu"}:  classChannel,
	{"Chip", "mu"}:       classBus,
	{"Device", "mu"}:     classBus,
	{"mapTable", "mu"}:   classMapTable,
	{"diffCache", "mu"}:  classDCache,
}

// lockOp describes one Lock/Unlock-family call on a modeled lock.
type lockOp struct {
	class     lockClass
	acquire   bool
	exclusive bool
	// recv is the expression owning the mutex field (e.g. `sh` in
	// sh.mu.Lock()); index is the shard index expression when recv is an
	// index into a shard slice (e.g. `i` in s.shards[i].mu.Lock()).
	recv  ast.Expr
	index ast.Expr
}

// classifyLockCall reports whether call is a (R)Lock/(R)Unlock on one of
// the modeled mutexes.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op.acquire, op.exclusive = true, true
	case "RLock":
		op.acquire, op.exclusive = true, false
	case "Unlock":
		op.acquire, op.exclusive = false, true
	case "RUnlock":
		op.acquire, op.exclusive = false, false
	default:
		return lockOp{}, false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	recv := field.X
	tname := namedTypeName(info.Types[recv].Type)
	class, ok := lockModel[[2]string{tname, field.Sel.Name}]
	if !ok {
		return lockOp{}, false
	}
	op.class = class
	op.recv = recv
	if idx, ok := recv.(*ast.IndexExpr); ok {
		op.index = idx.Index
	}
	return op, true
}

// namedTypeName returns the bare name of t's named type, dereferencing
// one pointer, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// heldLock is one acquired lock class in the abstract state.
type heldLock struct {
	class     lockClass
	exclusive bool
	// deferRelease is set when a defer guarantees the release on every
	// return path.
	deferRelease bool
	// entry marks locks seeded from a //pdlvet:holds declaration rather
	// than acquired in the function body.
	entry bool
	// pos is the acquisition site (for diagnostics and for recognizing
	// the same site re-executed by a loop).
	pos token.Pos
	// shardIdx is the constant shard index if known, else -1.
	shardIdx int64
	// shardIdxKnown reports whether shardIdx is meaningful.
	shardIdxKnown bool
}

// lockSet is the abstract "locks held here" state, tracked per class.
type lockSet map[lockClass]*heldLock

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		lv := *v
		out[k] = &lv
	}
	return out
}

// maxRank returns the innermost rank currently held and its class.
func (s lockSet) maxRank() (int, lockClass) {
	best, bc := 0, classNone
	for c := range s {
		if c.rank() > best {
			best, bc = c.rank(), c
		}
	}
	return best, bc
}

// intersect merges branch exits: a lock is held after the branch point
// only if every falling-through branch holds it.
func intersect(sets []lockSet) lockSet {
	if len(sets) == 0 {
		return lockSet{}
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		for c, h := range out {
			o, ok := s[c]
			if !ok {
				delete(out, c)
				continue
			}
			h.deferRelease = h.deferRelease || o.deferRelease
		}
	}
	return out
}

// union merges a loop body's exit with the pre-loop state: a lock is
// held if either holds it (the body may have executed and accumulated).
func union(a, b lockSet) lockSet {
	out := a.clone()
	for c, h := range b {
		if have, ok := out[c]; ok {
			have.deferRelease = have.deferRelease || h.deferRelease
			continue
		}
		lv := *h
		out[c] = &lv
	}
	return out
}

// constIndex evaluates e as a constant int, if it is one.
func constIndex(info *types.Info, e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return v, ok
}

// funcSummary is the per-function result of the first pass: which lock
// classes the function may acquire (directly or through same-package
// callees) and which it declares its caller must hold.
type funcSummary struct {
	obj      types.Object
	decl     *ast.FuncDecl
	acquires map[lockClass]bool
	requires []lockClass
	callees  map[types.Object]bool
}

// summarize builds funcSummaries for every function declaration of the
// package and closes the acquires sets over same-package calls.
func summarize(pass *vetkit.Pass) map[types.Object]*funcSummary {
	sums := make(map[types.Object]*funcSummary)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sum := &funcSummary{
				obj:      obj,
				decl:     fd,
				acquires: make(map[lockClass]bool),
				callees:  make(map[types.Object]bool),
			}
			for _, name := range vetkit.HoldsOf(fd) {
				if c := classByName(name); c != classNone {
					sum.requires = append(sum.requires, c)
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					return false // runs on another stack
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := classifyLockCall(pass.TypesInfo, call); ok {
					if op.acquire {
						sum.acquires[op.class] = true
					}
					return true
				}
				if callee := calleeOf(pass.TypesInfo, call); callee != nil {
					sum.callees[callee] = true
				}
				return true
			})
			sums[obj] = sum
		}
	}
	// Transitive closure of acquires over same-package static calls.
	for changed := true; changed; {
		changed = false
		for _, sum := range sums {
			for callee := range sum.callees {
				csum, ok := sums[callee]
				if !ok {
					continue
				}
				for c := range csum.acquires {
					if !sum.acquires[c] {
						sum.acquires[c] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// calleeOf resolves the static callee object of a call, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if o := info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if o := info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}
