package pdlvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdl/internal/analysis/vetkit"
)

// LockOrder reports violations of the documented lock hierarchy
//
//	kv > shard > flash > channel > bus > maptable > dcache
//
// (README "Architecture"): acquiring an outer lock while an inner one
// is held — directly or by calling a same-package function that may
// acquire one — re-acquiring a class already held, multi-instance
// (kv bucket, shard, flash channel) acquisitions whose index order
// cannot be proven ascending, locks still held at a return without a
// deferred or explicit unlock, and calls into functions that declare
// `//pdlvet:holds <lock>` from contexts that do not hold it. The holds
// directive also attaches to function literals (a comment on the line
// above the `func` keyword): channel-agnostic program callbacks run
// under the channel lock their runner acquires, which the literal's
// definition site cannot see.
var LockOrder = &vetkit.Analyzer{
	Name: "lockorder",
	Doc: "check lock acquisitions against the kv > shard > flash > channel > bus > maptable > dcache hierarchy,\n" +
		"ascending bucket/shard/channel-lock order, unlock-on-return discipline, and //pdlvet:holds declarations",
	Run: runLockOrder,
}

func runLockOrder(pass *vetkit.Pass) error {
	sums := summarize(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockOrder(pass, fd, sums)
		}
	}
	return nil
}

func checkLockOrder(pass *vetkit.Pass, decl *ast.FuncDecl, sums map[types.Object]*funcSummary) {
	walkFunc(pass, decl, hooks{
		onAcquire: func(t *tracker, call *ast.CallExpr, op lockOp, before lockSet) {
			if r, c := before.maxRank(); r > op.class.rank() {
				pass.Reportf(call.Pos(),
					"acquiring the %s lock while holding the %s lock inverts the lock hierarchy (kv > shard > flash > channel > bus > maptable > dcache)",
					op.class, c)
				return
			}
			held, already := before[op.class]
			if !already {
				return
			}
			if !op.class.multiInstance() {
				pass.Reportf(call.Pos(), "re-acquiring the %s lock already held (self-deadlock)", op.class)
				return
			}
			// Multi-instance acquisition (shard, kv bucket): must be
			// provably ascending.
			if held.pos == call.Pos() {
				// The same acquisition site re-executed by a loop.
				if !t.loopAscending(op) {
					pass.Reportf(call.Pos(),
						"%s locks acquired in a loop whose index order cannot be proven ascending (sort the index slice first)",
						op.class)
				}
				return
			}
			if v, ok := constIndex(pass.TypesInfo, op.index); ok && held.shardIdxKnown {
				if v <= held.shardIdx {
					pass.Reportf(call.Pos(),
						"%s lock %d acquired while %s lock %d is held; %s locks must be taken in ascending index order",
						op.class, v, op.class, held.shardIdx, op.class)
				}
				return
			}
			pass.Reportf(call.Pos(),
				"second %s lock acquired while one is held, in an order that cannot be proven ascending",
				op.class)
		},
		onCall: func(call *ast.CallExpr, callee types.Object, held lockSet) {
			if callee == nil {
				return
			}
			sum, ok := sums[callee]
			if !ok {
				return
			}
			for _, req := range sum.requires {
				if _, ok := held[req]; !ok {
					pass.Reportf(call.Pos(),
						"call to %s requires holding the %s lock (declared //pdlvet:holds %s)",
						callee.Name(), req, req)
				}
			}
			if len(held) == 0 {
				return
			}
			maxRank, maxClass := held.maxRank()
			for c := range sum.acquires {
				if c.rank() < maxRank {
					pass.Reportf(call.Pos(),
						"call to %s may acquire the %s lock while the %s lock is held, inverting the lock hierarchy",
						callee.Name(), c, maxClass)
				} else if _, ok := held[c]; ok && !c.multiInstance() {
					pass.Reportf(call.Pos(),
						"call to %s may re-acquire the %s lock already held (self-deadlock)",
						callee.Name(), c)
				}
			}
		},
		onExit: func(pos token.Pos, held lockSet) {
			for _, h := range held {
				if h.entry || h.deferRelease {
					continue
				}
				pass.Reportf(h.pos,
					"%s lock acquired here is still held at the return on line %d without a deferred unlock",
					h.class, pass.Fset.Position(pos).Line)
			}
		},
	})
}

// loopAscending reports whether the innermost enclosing loop provably
// yields ascending shard indices for op's index expression: an
// index-variable range over a slice, a classic `i++` counting loop, or
// a value range over a slice the function sorted.
func (t *tracker) loopAscending(op lockOp) bool {
	if len(t.loops) == 0 {
		return false
	}
	idxIdent, _ := op.index.(*ast.Ident)
	if idxIdent == nil {
		return false
	}
	idxObj := t.pass.TypesInfo.Uses[idxIdent]
	if idxObj == nil {
		return false
	}
	switch loop := t.loops[len(t.loops)-1].(type) {
	case *ast.RangeStmt:
		if key, ok := loop.Key.(*ast.Ident); ok && t.pass.TypesInfo.Defs[key] == idxObj {
			return true // `for i := range xs { shards[i]... }`: i ascends
		}
		if val, ok := loop.Value.(*ast.Ident); ok && t.pass.TypesInfo.Defs[val] == idxObj {
			if x, ok := loop.X.(*ast.Ident); ok {
				if obj := t.pass.TypesInfo.Uses[x]; obj != nil && t.sorted[obj] {
					return true // `sort.Ints(xs); for _, i := range xs { ... }`
				}
			}
		}
		return false
	case *ast.ForStmt:
		post, ok := loop.Post.(*ast.IncDecStmt)
		if !ok || post.Tok != token.INC {
			return false
		}
		pv, ok := post.X.(*ast.Ident)
		return ok && t.pass.TypesInfo.Uses[pv] == idxObj
	}
	return false
}
