// Package fencedcache is the fencedcache analyzer's corpus: stub
// diffCache/mapTable shapes with fenced and unfenced inserts, and
// paired and unpaired mapping mutations.
package fencedcache

import "sync"

type PPN uint32

type Differential struct{}

type diffCache struct {
	mu  sync.Mutex
	gen uint64
}

func (c *diffCache) genSnapshot() uint64                              { return c.gen }
func (c *diffCache) get(p PPN) ([]Differential, bool)                 { return nil, false }
func (c *diffCache) put(p PPN, recs []Differential, genBefore uint64) {}
func (c *diffCache) invalidate(p PPN)                                 {}

type mapTable struct{ mu sync.Mutex }

func (t *mapTable) setDiffPage(pid uint32, p PPN, ts uint64) PPN { return 0 }
func (t *mapTable) dropDiffPage(p PPN)                           {}
func (t *mapTable) decDiffCount(p PPN) bool                      { return false }

type Store struct {
	dcache *diffCache
	mt     *mapTable
}

// goodFencedPut is the read path's idiom: snapshot, read, insert.
func (s *Store) goodFencedPut(p PPN, recs []Differential) {
	gen := s.dcache.genSnapshot()
	s.dcache.put(p, recs, gen)
}

func (s *Store) goodInlinePut(p PPN, recs []Differential) {
	s.dcache.put(p, recs, s.dcache.genSnapshot())
}

// goodParamPut trusts a fence threaded down from the caller.
func (s *Store) goodParamPut(p PPN, recs []Differential, gen uint64) {
	s.dcache.put(p, recs, gen)
}

func (s *Store) badConstPut(p PPN, recs []Differential) {
	s.dcache.put(p, recs, 0) // want `diff-cache put without a generation fence`
}

func (s *Store) badLatePut(p PPN, recs []Differential) {
	var gen uint64
	s.dcache.put(p, recs, gen) // want `diff-cache put uses a generation snapshotted after the insert point`
	gen = s.dcache.genSnapshot()
	_ = gen
}

// goodPairedKill repoints a differential mapping and fences the cache.
func (s *Store) goodPairedKill(p PPN) {
	old := s.mt.setDiffPage(1, p, 2)
	s.dcache.invalidate(old)
}

func (s *Store) badUnpairedKill(p PPN) {
	s.mt.setDiffPage(1, p, 2) // want `setDiffPage kills or rebirths a differential mapping but this function never invalidates the diff cache`
}

func (s *Store) badUnpairedDrop(p PPN) {
	s.mt.dropDiffPage(p) // want `dropDiffPage kills or rebirths a differential mapping but this function never invalidates the diff cache`
}
