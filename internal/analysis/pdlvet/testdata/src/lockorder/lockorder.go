// Package lockorder is the lockorder analyzer's corpus: stub types
// mirroring the real tree's lock-bearing shapes (matched by type and
// field name), with seeded hierarchy violations and their corrected
// counterparts.
package lockorder

import (
	"sort"
	"sync"
)

type mapTable struct{ mu sync.RWMutex }

type diffCache struct{ mu sync.Mutex }

type shard struct{ mu sync.Mutex }

type storeChan struct{ mu sync.Mutex }

type Store struct {
	flashMu sync.Mutex
	shards  []shard
	chans   []storeChan
	mt      *mapTable
	dcache  *diffCache
}

// goodOrder acquires outer-to-inner with deferred releases.
func (s *Store) goodOrder() {
	s.flashMu.Lock()
	defer s.flashMu.Unlock()
	s.mt.mu.Lock()
	defer s.mt.mu.Unlock()
}

func (s *Store) badInversion() {
	s.mt.mu.Lock()
	s.flashMu.Lock() // want `acquiring the flash lock while holding the maptable lock inverts the lock hierarchy`
	s.flashMu.Unlock()
	s.mt.mu.Unlock()
}

func (s *Store) badReacquire() {
	s.flashMu.Lock()
	defer s.flashMu.Unlock()
	s.flashMu.Lock() // want `re-acquiring the flash lock already held \(self-deadlock\)`
}

func (s *Store) goodShardsAscendingConst() {
	s.shards[0].mu.Lock()
	s.shards[1].mu.Lock()
	s.shards[1].mu.Unlock()
	s.shards[0].mu.Unlock()
}

func (s *Store) badShardsDescendingConst() {
	s.shards[1].mu.Lock()
	s.shards[0].mu.Lock() // want `shard lock 0 acquired while shard lock 1 is held`
	s.shards[0].mu.Unlock()
	s.shards[1].mu.Unlock()
}

func (s *Store) badShardsUnknownOrder(i, j int) {
	s.shards[i].mu.Lock()
	s.shards[j].mu.Lock() // want `second shard lock acquired while one is held, in an order that cannot be proven ascending`
	s.shards[j].mu.Unlock()
	s.shards[i].mu.Unlock()
}

// goodShardsKeyRange locks every shard in index order: the range key
// ascends by construction.
func (s *Store) goodShardsKeyRange() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
}

// goodShardsSortedRange is the WriteBatch idiom: sort the involved
// indices, then lock in slice order.
func (s *Store) goodShardsSortedRange(involved []int) {
	sort.Ints(involved)
	for _, si := range involved {
		s.shards[si].mu.Lock()
	}
	defer func() {
		for _, si := range involved {
			s.shards[si].mu.Unlock()
		}
	}()
}

func (s *Store) badShardsUnsortedRange(involved []int) {
	for _, si := range involved {
		s.shards[si].mu.Lock() // want `shard locks acquired in a loop whose index order cannot be proven ascending`
	}
	defer func() {
		for _, si := range involved {
			s.shards[si].mu.Unlock()
		}
	}()
}

func (s *Store) badLeak(cond bool) {
	s.flashMu.Lock() // want `flash lock acquired here is still held at the return on line \d+ without a deferred unlock`
	if cond {
		return
	}
	s.flashMu.Unlock()
}

// commitLocked declares the caller-holds convention the real mapping
// committers use.
//
//pdlvet:holds flash
func (s *Store) commitLocked() {
	s.mt.mu.Lock()
	s.mt.mu.Unlock()
}

func (s *Store) goodCaller() {
	s.flashMu.Lock()
	defer s.flashMu.Unlock()
	s.commitLocked()
}

func (s *Store) badCaller() {
	s.commitLocked() // want `call to commitLocked requires holding the flash lock \(declared //pdlvet:holds flash\)`
}

// routeLocked declares the adaptive-tracker convention: per-page routing
// state is read-modify-written only under the owning pid's shard lock.
//
//pdlvet:holds shard
func (s *Store) routeLocked() {}

func (s *Store) goodRouter(si int) {
	s.shards[si].mu.Lock()
	defer s.shards[si].mu.Unlock()
	s.routeLocked()
}

func (s *Store) badRouter() {
	s.routeLocked() // want `call to routeLocked requires holding the shard lock \(declared //pdlvet:holds shard\)`
}

func (s *Store) takesFlash() {
	s.flashMu.Lock()
	defer s.flashMu.Unlock()
}

func (s *Store) badIndirectInversion() {
	s.mt.mu.Lock()
	defer s.mt.mu.Unlock()
	s.takesFlash() // want `call to takesFlash may acquire the flash lock while the maptable lock is held`
}

func (s *Store) badIndirectReacquire() {
	s.flashMu.Lock()
	defer s.flashMu.Unlock()
	s.takesFlash() // want `call to takesFlash may re-acquire the flash lock already held`
}

// suppressed shows a documented suppression: the inversion below is
// intentional corpus material and carries an ignore directive.
func (s *Store) suppressed() {
	s.mt.mu.Lock()
	//pdlvet:ignore lockorder seeded violation kept quiet to exercise the directive
	s.flashMu.Lock()
	s.flashMu.Unlock()
	s.mt.mu.Unlock()
}

// goodChannelUnderFlash descends the hierarchy: the channel lock sits
// directly below the flash lock.
func (s *Store) goodChannelUnderFlash() {
	s.flashMu.Lock()
	defer s.flashMu.Unlock()
	s.chans[0].mu.Lock()
	defer s.chans[0].mu.Unlock()
	s.mt.mu.Lock()
	s.mt.mu.Unlock()
}

func (s *Store) badChannelUnderMapTable() {
	s.mt.mu.Lock()
	defer s.mt.mu.Unlock()
	s.chans[0].mu.Lock() // want `acquiring the channel lock while holding the maptable lock inverts the lock hierarchy`
	s.chans[0].mu.Unlock()
}

func (s *Store) badShardUnderChannel() {
	s.chans[0].mu.Lock()
	defer s.chans[0].mu.Unlock()
	s.shards[0].mu.Lock() // want `acquiring the shard lock while holding the channel lock inverts the lock hierarchy`
	s.shards[0].mu.Unlock()
}

func (s *Store) goodChannelsAscendingConst() {
	s.chans[0].mu.Lock()
	s.chans[1].mu.Lock()
	s.chans[1].mu.Unlock()
	s.chans[0].mu.Unlock()
}

func (s *Store) badChannelsDescendingConst() {
	s.chans[1].mu.Lock()
	s.chans[0].mu.Lock() // want `channel lock 0 acquired while channel lock 1 is held; channel locks must be taken in ascending index order`
	s.chans[0].mu.Unlock()
	s.chans[1].mu.Unlock()
}

// goodChannelsSortedRange is the writePending idiom: sort the involved
// channel indices, then lock in slice order.
func (s *Store) goodChannelsSortedRange(involved []int) {
	sort.Ints(involved)
	for _, ch := range involved {
		s.chans[ch].mu.Lock()
	}
	defer func() {
		for _, ch := range involved {
			s.chans[ch].mu.Unlock()
		}
	}()
}

func (s *Store) badChannelsUnsortedRange(involved []int) {
	for _, ch := range involved {
		s.chans[ch].mu.Lock() // want `channel locks acquired in a loop whose index order cannot be proven ascending`
	}
	defer func() {
		for _, ch := range involved {
			s.chans[ch].mu.Unlock()
		}
	}()
}

// goodChannelsCountingLoop proves ascent through a classic i++ loop
// (the allocPagesElsewhere extension shape, started from no held
// channel).
func (s *Store) goodChannelsCountingLoop(start int) {
	for ch := start; ch < len(s.chans); ch++ {
		s.chans[ch].mu.Lock()
	}
	defer func() {
		for ch := start; ch < len(s.chans); ch++ {
			s.chans[ch].mu.Unlock()
		}
	}()
}

// programOnChannel declares the caller-holds convention the per-channel
// program helpers (allocPageOn, flushShardLocked, relocate) use.
//
//pdlvet:holds channel
func (s *Store) programOnChannel() {
	s.mt.mu.Lock()
	s.mt.mu.Unlock()
}

func (s *Store) goodChannelCaller() {
	s.chans[0].mu.Lock()
	defer s.chans[0].mu.Unlock()
	s.programOnChannel()
}

func (s *Store) badChannelCaller() {
	s.programOnChannel() // want `call to programOnChannel requires holding the channel lock \(declared //pdlvet:holds channel\)`
}

// runUnderChannel is the runOnChannel shape: the callback runs under a
// channel lock the runner acquires, invisible at the literal's
// definition site.
func (s *Store) runUnderChannel(fn func()) {
	s.chans[0].mu.Lock()
	defer s.chans[0].mu.Unlock()
	fn()
}

// goodAnnotatedLiteral declares the convention on the literal itself:
// //pdlvet:holds on the line above the func keyword seeds its body's
// entry lock set.
func (s *Store) goodAnnotatedLiteral() {
	s.runUnderChannel(
		//pdlvet:holds channel
		func() {
			s.programOnChannel()
		})
}

func (s *Store) badUnannotatedLiteral() {
	s.runUnderChannel(func() {
		s.programOnChannel() // want `call to programOnChannel requires holding the channel lock \(declared //pdlvet:holds channel\)`
	})
}

// bucket mirrors the serving layer's per-bucket lock (internal/kv),
// the hierarchy's outermost tier: kv > shard > ... .
type bucket struct{ mu sync.Mutex }

type DB struct {
	buckets []bucket
	store   *Store
}

// goodBucketThenEngine descends the hierarchy: bucket lock first, the
// engine's locks below it.
func (d *DB) goodBucketThenEngine() {
	d.buckets[0].mu.Lock()
	defer d.buckets[0].mu.Unlock()
	d.store.flashMu.Lock()
	defer d.store.flashMu.Unlock()
}

func (d *DB) badBucketUnderFlash() {
	d.store.flashMu.Lock()
	defer d.store.flashMu.Unlock()
	d.buckets[0].mu.Lock() // want `acquiring the kv lock while holding the flash lock inverts the lock hierarchy`
	d.buckets[0].mu.Unlock()
}

func (d *DB) badBucketUnderShard() {
	d.store.shards[0].mu.Lock()
	defer d.store.shards[0].mu.Unlock()
	d.buckets[0].mu.Lock() // want `acquiring the kv lock while holding the shard lock inverts the lock hierarchy`
	d.buckets[0].mu.Unlock()
}

// goodBucketsKeyRange is the kv snapshot idiom: lock every bucket in
// index order before collecting, release in a deferred sweep.
func (d *DB) goodBucketsKeyRange() {
	for i := range d.buckets {
		d.buckets[i].mu.Lock()
	}
	defer func() {
		for i := range d.buckets {
			d.buckets[i].mu.Unlock()
		}
	}()
}

// goodBucketsSortedRange is the kv PutBatch idiom: sort the involved
// bucket indices, then lock in slice order.
func (d *DB) goodBucketsSortedRange(involved []int) {
	sort.Ints(involved)
	for _, bi := range involved {
		d.buckets[bi].mu.Lock()
	}
	defer func() {
		for _, bi := range involved {
			d.buckets[bi].mu.Unlock()
		}
	}()
}

func (d *DB) badBucketsUnsortedRange(involved []int) {
	for _, bi := range involved {
		d.buckets[bi].mu.Lock() // want `kv locks acquired in a loop whose index order cannot be proven ascending`
	}
	defer func() {
		for _, bi := range involved {
			d.buckets[bi].mu.Unlock()
		}
	}()
}

func (d *DB) badBucketsDescendingConst() {
	d.buckets[1].mu.Lock()
	d.buckets[0].mu.Lock() // want `kv lock 0 acquired while kv lock 1 is held; kv locks must be taken in ascending index order`
	d.buckets[0].mu.Unlock()
	d.buckets[1].mu.Unlock()
}

// putLocked declares the caller-holds convention the kv bucket helpers
// (put, get, collectRange) use.
//
//pdlvet:holds kv
func (d *DB) putLocked() {}

func (d *DB) goodBucketCaller() {
	d.buckets[0].mu.Lock()
	defer d.buckets[0].mu.Unlock()
	d.putLocked()
}

func (d *DB) badBucketCaller() {
	d.putLocked() // want `call to putLocked requires holding the kv lock \(declared //pdlvet:holds kv\)`
}
