package atomiccounter

import (
	"sync"
	"sync/atomic"
)

// Counters mirrors flash.Counters: the all-atomic counter struct whose
// fields must only be touched through the sync/atomic API.
type Counters struct {
	reads  atomic.Int64
	writes atomic.Int64
}

type Dev struct {
	counters Counters
}

func (d *Dev) goodAtomic() int64 {
	d.counters.reads.Add(1)
	d.counters.writes.Store(0)
	return d.counters.reads.Load()
}

func (d *Dev) badPlainField() int64 {
	r := d.counters.reads // want `field reads of atomic counter struct Counters accessed outside the sync/atomic API`
	return r.Load()
}

// Telemetry mirrors core.Telemetry: a plain counter container.
type Telemetry struct {
	Flushes int64
}

// Mixed bumps one site atomically and another bare: every plain access
// is reported, whatever lock it happens to hold.
type Mixed struct {
	tel Telemetry
}

func (m *Mixed) goodAtomicAdd() {
	atomic.AddInt64(&m.tel.Flushes, 1)
}

func (m *Mixed) badPlainBump() {
	m.tel.Flushes++ // want `plain access of counter Mixed.tel, which is accessed with sync/atomic elsewhere \(mixed access\)`
}

// Alloc mirrors ftl.Allocator.gcStats: writes follow a caller-holds
// convention the analyzer cannot see, so no guard is inferred and no
// access is reported.
type Alloc struct {
	mu      sync.Mutex
	gcStats Stats
}

func (a *Alloc) bump() {
	a.gcStats.Reads++
}

func (a *Alloc) snapshot() Stats {
	return a.gcStats
}
