// Package atomiccounter is the atomiccounter analyzer's corpus. This
// file is the regression case: it reproduces the pre-PR-2 Chip.Stats
// bug, where the device counters were bumped under the bus lock but
// snapshotted without it — a torn read the race detector only catches
// when a test happens to overlap the two.
package atomiccounter

import "sync"

// Stats mirrors flash.Stats: a plain counter snapshot struct.
type Stats struct {
	Reads, Writes int64
}

// Chip reproduces the pre-PR-2 shape: stats guarded by mu at every
// write site, read bare in Stats.
type Chip struct {
	mu    sync.Mutex
	stats Stats
}

func (c *Chip) DoRead() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Reads++
}

func (c *Chip) DoWrite() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Writes++
}

func (c *Chip) Stats() Stats {
	return c.stats // want `access of counter Chip.stats without the bus lock that guards its writes \(torn-snapshot race\)`
}

// StatsLocked is the post-PR-2 correction: snapshot under the same lock
// the writers hold.
func (c *Chip) StatsLocked() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
