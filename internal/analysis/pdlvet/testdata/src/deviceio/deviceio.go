// Package deviceio is the deviceio analyzer's corpus. Its package path
// element ("deviceio") is NOT on the mutation allowlist, so every
// Program/Erase here doubles as an outside-the-FTL finding; the
// allowlisted counterpart lives in the core subpackage.
package deviceio

import "sync"

type PPN uint32

// Chip mirrors flash.Chip's shape: the analyzer matches device calls by
// receiver type name and method name.
type Chip struct{ mu sync.RWMutex }

func (c *Chip) Read(p PPN, b []byte) error           { return nil }
func (c *Chip) Program(p PPN, b, spare []byte) error { return nil }
func (c *Chip) Erase(block int) error                { return nil }

type mapTable struct{ mu sync.RWMutex }

type diffCache struct{ mu sync.Mutex }

type Store struct {
	dev    *Chip
	mt     *mapTable
	dcache *diffCache
}

func (s *Store) goodReadNoLock(b []byte) {
	s.dev.Read(0, b)
}

func (s *Store) badReadUnderMapTable(b []byte) {
	s.mt.mu.Lock()
	defer s.mt.mu.Unlock()
	s.dev.Read(0, b) // want `device Read call while holding the maptable lock`
}

func (s *Store) badProgramUnderDCache(b []byte) {
	s.dcache.mu.Lock()
	defer s.dcache.mu.Unlock()
	s.dev.Program(0, b, nil) // want `device Program call while holding the dcache lock` `device mutation Program outside the FTL packages`
}

func (s *Store) badMutationHere(b []byte) {
	s.dev.Program(0, b, nil) // want `device mutation Program outside the FTL packages`
}

func (s *Store) badEraseHere() {
	s.dev.Erase(3) // want `device mutation Erase outside the FTL packages`
}
