// Package core is the allowlisted half of the deviceio corpus: its
// path element ("core") may issue device mutations, so only the
// under-lock rule applies here.
package core

import "sync"

type Chip struct{ mu sync.RWMutex }

func (c *Chip) Read(p uint32, b []byte) error           { return nil }
func (c *Chip) Program(p uint32, b, spare []byte) error { return nil }

type mapTable struct{ mu sync.RWMutex }

type Store struct {
	dev *Chip
	mt  *mapTable
}

// goodProgram mutates the device from an allowlisted package with no
// inner lock held: silent.
func (s *Store) goodProgram(b []byte) {
	s.dev.Program(0, b, nil)
}

func (s *Store) badProgramUnderMapTable(b []byte) {
	s.mt.mu.Lock()
	defer s.mt.mu.Unlock()
	s.dev.Program(0, b, nil) // want `device Program call while holding the maptable lock`
}
