// Package core is the allowlisted half of the deviceio corpus: its
// path element ("core") may issue device mutations, so the under-lock
// rule and the raw-read funnel rule apply here.
package core

import "sync"

type Chip struct{ mu sync.RWMutex }

func (c *Chip) Read(p uint32, b []byte) error           { return nil }
func (c *Chip) ReadData(p uint32, b []byte) error       { return nil }
func (c *Chip) ReadSpare(p uint32, b []byte) error      { return nil }
func (c *Chip) Program(p uint32, b, spare []byte) error { return nil }

type mapTable struct{ mu sync.RWMutex }

type Store struct {
	dev *Chip
	mt  *mapTable
}

// goodProgram mutates the device from an allowlisted package with no
// inner lock held: silent.
func (s *Store) goodProgram(b []byte) {
	s.dev.Program(0, b, nil)
}

func (s *Store) badProgramUnderMapTable(b []byte) {
	s.mt.mu.Lock()
	defer s.mt.mu.Unlock()
	s.dev.Program(0, b, nil) // want `device Program call while holding the maptable lock`
}

// verifiedRead is a designated raw-read funnel: the directive on its doc
// comment blesses every device read in its body.
//
//pdlvet:ignore deviceio raw-read funnel
func (s *Store) verifiedRead(p uint32, b, spare []byte) error {
	if spare == nil {
		return s.dev.ReadData(p, b)
	}
	return s.dev.Read(p, b)
}

// badRawRead reads the device outside a funnel: every byte it returns
// skipped verification.
func (s *Store) badRawRead(b []byte) {
	s.dev.Read(0, b) // want `raw device read Read outside a verifying funnel`
}

func (s *Store) badRawReadSpare(b []byte) {
	s.dev.ReadSpare(0, b) // want `raw device read ReadSpare outside a verifying funnel`
}

// suppressedRawRead demonstrates the line-level escape for call sites
// that are provably outside the verification contract.
func (s *Store) suppressedRawRead(b []byte) {
	//pdlvet:ignore deviceio reads a page the caller just programmed under its channel lock
	s.dev.Read(0, b)
}

// funnelStillLockChecked shows the funnel directive does not waive the
// under-lock rule: a funnel reading under the mapTable lock still
// reports.
//
//pdlvet:ignore deviceio raw-read funnel
func (s *Store) funnelStillLockChecked(b []byte) {
	s.mt.mu.RLock()
	defer s.mt.mu.RUnlock()
	s.dev.Read(0, b) // want `device Read call while holding the maptable lock`
}
