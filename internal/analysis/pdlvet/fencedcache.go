package pdlvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdl/internal/analysis/vetkit"
)

// FencedCache enforces the decoded-differential cache's coherence
// protocol:
//
//   - every diffCache.put must carry a generation fence taken with
//     genSnapshot *before* the flash read that produced the decoded
//     records (or a parameter threaded down from a caller that did) —
//     inserting with a made-up generation lets a stale decode overwrite
//     a post-invalidation entry;
//   - every function that kills or rebirths a differential mapping
//     (mapTable.setDiffPage / repointDiff / dropDiffPage /
//     decDiffCount) must also call the diffCache invalidation helper,
//     so readers never decode a dead physical page from cache.
var FencedCache = &vetkit.Analyzer{
	Name: "fencedcache",
	Doc: "check that diff-cache inserts carry a genSnapshot generation fence and that every\n" +
		"diff-mapping mutation is paired with a diff-cache invalidation",
	Run: runFencedCache,
}

// diffMutators are the mapTable methods that kill or rebirth a
// differential mapping.
var diffMutators = map[string]bool{
	"setDiffPage": true, "repointDiff": true, "dropDiffPage": true, "decDiffCount": true,
}

func runFencedCache(pass *vetkit.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPutFences(pass, fd)
			checkInvalidatePairing(pass, fd)
		}
	}
	return nil
}

// methodCallOn reports whether call invokes method name on a receiver
// whose named type is recvType.
func methodCallOn(info *types.Info, call *ast.CallExpr, recvType, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return namedTypeName(info.Types[sel.X].Type) == recvType
}

// checkPutFences verifies the generation argument of each diffCache.put
// in fd: a direct genSnapshot() call, an identifier assigned from one
// earlier in the body, or a parameter of the enclosing function.
func checkPutFences(pass *vetkit.Pass, fd *ast.FuncDecl) {
	// Positions at which identifiers were assigned from genSnapshot().
	snapAt := make(map[types.Object]token.Pos)
	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			for _, name := range fld.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !methodCallOn(pass.TypesInfo, call, "diffCache", "genSnapshot") {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				snapAt[obj] = as.Pos()
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !methodCallOn(pass.TypesInfo, call, "diffCache", "put") {
			return true
		}
		if len(call.Args) < 3 {
			return true
		}
		gen := call.Args[2]
		switch g := gen.(type) {
		case *ast.CallExpr:
			if methodCallOn(pass.TypesInfo, g, "diffCache", "genSnapshot") {
				// Snapshot taken at insert time: always stale-safe (the
				// records were decoded no later than now).
				return true
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[g]
			if obj != nil {
				if params[obj] {
					return true // fence threaded down from the caller
				}
				if at, ok := snapAt[obj]; ok {
					if at < call.Pos() {
						return true
					}
					pass.Reportf(call.Pos(),
						"diff-cache put uses a generation snapshotted after the insert point; take genSnapshot before reading the records")
					return true
				}
			}
		}
		pass.Reportf(call.Pos(),
			"diff-cache put without a generation fence: the generation argument must come from genSnapshot taken before the read")
		return true
	})
}

// checkInvalidatePairing reports functions that mutate a differential
// mapping without invalidating the diff cache in the same body.
// mapTable's own methods are exempt: they are the mutation primitives,
// and their callers own the pairing.
func checkInvalidatePairing(pass *vetkit.Pass, fd *ast.FuncDecl) {
	if recvTypeName(pass, fd) == "mapTable" {
		return
	}
	var firstMutation *ast.CallExpr
	mutName := ""
	invalidates := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if diffMutators[sel.Sel.Name] && namedTypeName(pass.TypesInfo.Types[sel.X].Type) == "mapTable" {
				if firstMutation == nil {
					firstMutation, mutName = call, sel.Sel.Name
				}
			}
		}
		if methodCallOn(pass.TypesInfo, call, "diffCache", "invalidate") {
			invalidates = true
		}
		return true
	})
	if firstMutation != nil && !invalidates {
		pass.Reportf(firstMutation.Pos(),
			"%s kills or rebirths a differential mapping but this function never invalidates the diff cache; pair it with the invalidation helper",
			mutName)
	}
}

// recvTypeName returns the bare receiver type name of a method decl.
func recvTypeName(pass *vetkit.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	return namedTypeName(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type)
}
