package pdlvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pdl/internal/analysis/vetkit"
)

// AtomicCounter enforces the telemetry-counter discipline that PR 2
// fixed by hand in Chip.Stats:
//
//   - fields of the dedicated atomic counter structs (flash.Counters,
//     core.readTelemetry) may only be touched through their sync/atomic
//     API — a plain read, write, or copy of such a field is a data race
//     with any concurrent monitor;
//   - a counter field must not mix sync/atomic access at one site with
//     plain access at another (mixed access voids every guarantee the
//     atomic sites paid for);
//   - for plain counter containers (flash.Stats, core.Telemetry) held
//     in shared structs, every write site's lock context is
//     intersected to infer the guarding lock; an access that holds no
//     guarding lock while guarded writes exist elsewhere is the
//     pre-PR-2 torn-snapshot bug and is reported.
var AtomicCounter = &vetkit.Analyzer{
	Name: "atomiccounter",
	Doc: "check that telemetry counters are accessed through sync/atomic (or consistently\n" +
		"under the lock that guards their writes), never with mixed or unguarded access",
	Run: runAtomicCounter,
}

// atomicStructNames are the structs whose fields carry sync/atomic
// types and must only be used through that API.
var atomicStructNames = map[string]bool{"Counters": true, "readTelemetry": true}

// containerNames are the plain counter snapshot structs; when one is a
// field of a shared struct, its access discipline is inferred.
var containerNames = map[string]bool{"Stats": true, "Telemetry": true}

// counterAccess is one read or write of a counter container field.
type counterAccess struct {
	pos    token.Pos
	write  bool
	atomic bool
	held   map[lockClass]bool
}

func runAtomicCounter(pass *vetkit.Pass) error {
	accesses := make(map[[2]string][]*counterAccess) // (owner type, field) -> accesses
	for _, f := range pass.Files {
		parents := parentMap(f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			heldAt := stmtLockContexts(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				checkAtomicStructField(pass, sel, parents)
				if acc, key, ok := containerFieldAccess(pass, sel, parents); ok {
					acc.held = heldAt.at(sel.Pos())
					accesses[key] = append(accesses[key], acc)
				}
				return true
			})
		}
	}

	keys := make([][2]string, 0, len(accesses))
	for k := range accesses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	for _, key := range keys {
		accs := accesses[key]
		reportMixed(pass, key, accs)
		reportUnguarded(pass, key, accs)
	}
	return nil
}

// checkAtomicStructField reports sel if it accesses a field of one of
// the atomic counter structs outside the sync/atomic API.
func checkAtomicStructField(pass *vetkit.Pass, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) {
	if !atomicStructNames[namedTypeName(pass.TypesInfo.Types[sel.X].Type)] {
		return
	}
	// Legal form 1: a method call on a sync/atomic-typed field, i.e.
	// sel is the X of a selector that is being called (x.f.Load()).
	if p, ok := parents[sel].(*ast.SelectorExpr); ok && p.X == sel {
		if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
			if fieldTypeIsAtomic(pass.TypesInfo.Types[sel].Type) {
				return
			}
		}
	}
	// Legal form 2: &x.f passed to a sync/atomic function.
	if u, ok := parents[sel].(*ast.UnaryExpr); ok && u.Op == token.AND {
		if call, ok := parents[u].(*ast.CallExpr); ok && isAtomicPkgCall(pass.TypesInfo, call) {
			return
		}
	}
	pass.Reportf(sel.Pos(),
		"field %s of atomic counter struct %s accessed outside the sync/atomic API",
		sel.Sel.Name, namedTypeName(pass.TypesInfo.Types[sel.X].Type))
}

// fieldTypeIsAtomic reports whether t is one of sync/atomic's types.
func fieldTypeIsAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isAtomicPkgCall reports whether call invokes a sync/atomic function.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeOf(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// containerFieldAccess classifies sel as an access to a counter
// container field of a shared (pointer-addressed) struct: either the
// container itself (base.tel, a whole-struct read or write) or one of
// its fields (base.tel.Reads). Returns the access and its (owner type,
// field name) key.
func containerFieldAccess(pass *vetkit.Pass, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) (*counterAccess, [2]string, bool) {
	if !containerNames[namedTypeName(pass.TypesInfo.Types[sel].Type)] {
		return nil, [2]string{}, false
	}
	baseType := pass.TypesInfo.Types[sel.X].Type
	if baseType == nil {
		return nil, [2]string{}, false
	}
	if _, ok := baseType.Underlying().(*types.Pointer); !ok {
		if _, ok := baseType.(*types.Pointer); !ok {
			return nil, [2]string{}, false // value base: a local snapshot, not shared state
		}
	}
	owner := namedTypeName(baseType)
	if owner == "" {
		return nil, [2]string{}, false
	}
	key := [2]string{owner, sel.Sel.Name}
	acc := &counterAccess{pos: sel.Pos()}

	// The effective access site: the container itself, or the subfield
	// selector directly on it.
	site := ast.Node(sel)
	if p, ok := parents[sel].(*ast.SelectorExpr); ok && p.X == ast.Node(sel) {
		if s, ok := pass.TypesInfo.Selections[p]; ok && s.Kind() == types.FieldVal {
			site = p
		}
	}
	switch p := parents[site].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == site {
				acc.write = true
			}
		}
	case *ast.IncDecStmt:
		acc.write = true
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			if call, ok := parents[p].(*ast.CallExpr); ok && isAtomicPkgCall(pass.TypesInfo, call) {
				acc.atomic = true
				acc.write = true // Add/Store/Swap; Load via pointer is rare and counts the same
			} else {
				acc.write = true // address escapes: assume the worst
			}
		}
	}
	return acc, key, true
}

// reportMixed reports plain accesses of a field that other sites access
// through sync/atomic.
func reportMixed(pass *vetkit.Pass, key [2]string, accs []*counterAccess) {
	anyAtomic := false
	for _, a := range accs {
		if a.atomic {
			anyAtomic = true
		}
	}
	if !anyAtomic {
		return
	}
	for _, a := range accs {
		if !a.atomic {
			pass.Reportf(a.pos,
				"plain access of counter %s.%s, which is accessed with sync/atomic elsewhere (mixed access)",
				key[0], key[1])
		}
	}
}

// reportUnguarded infers the lock guarding a counter container from the
// intersection of its plain write sites' lock contexts and reports any
// access holding none of the guards — the pre-PR-2 Chip.Stats bug.
func reportUnguarded(pass *vetkit.Pass, key [2]string, accs []*counterAccess) {
	var guards map[lockClass]bool
	for _, a := range accs {
		if !a.write || a.atomic {
			continue
		}
		if guards == nil {
			guards = make(map[lockClass]bool, len(a.held))
			for c := range a.held {
				guards[c] = true
			}
			continue
		}
		for c := range guards {
			if !a.held[c] {
				delete(guards, c)
			}
		}
	}
	if len(guards) == 0 {
		return // no writes, or writes follow a caller-holds convention we cannot see
	}
	guardNames := make([]string, 0, len(guards))
	for c := range guards {
		guardNames = append(guardNames, c.String())
	}
	sort.Strings(guardNames)
	for _, a := range accs {
		if a.atomic {
			continue
		}
		ok := false
		for c := range guards {
			if a.held[c] {
				ok = true
			}
		}
		if !ok {
			pass.Reportf(a.pos,
				"access of counter %s.%s without the %s lock that guards its writes (torn-snapshot race)",
				key[0], key[1], guardNames[0])
		}
	}
}

// stmtLockContext records the lock classes held at each statement.
type stmtLockContext struct {
	stmts []ast.Stmt
	held  map[ast.Stmt]map[lockClass]bool
}

// stmtLockContexts runs the lock tracker over fn, recording the classes
// held at every statement.
func stmtLockContexts(pass *vetkit.Pass, fn *ast.FuncDecl) *stmtLockContext {
	ctx := &stmtLockContext{held: make(map[ast.Stmt]map[lockClass]bool)}
	walkFunc(pass, fn, hooks{
		onStmt: func(stmt ast.Stmt, held lockSet) {
			classes := make(map[lockClass]bool, len(held))
			for c := range held {
				classes[c] = true
			}
			ctx.stmts = append(ctx.stmts, stmt)
			ctx.held[stmt] = classes
		},
	})
	return ctx
}

// at returns the lock classes held at the innermost statement enclosing
// pos.
func (c *stmtLockContext) at(pos token.Pos) map[lockClass]bool {
	var best ast.Stmt
	for _, s := range c.stmts {
		if s.Pos() <= pos && pos <= s.End() {
			if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
				best = s
			}
		}
	}
	if best == nil {
		return map[lockClass]bool{}
	}
	return c.held[best]
}

// parentMap builds a child-to-parent relation for a file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

var _ = fmt.Sprintf // keep fmt for diagnostics formatting growth
