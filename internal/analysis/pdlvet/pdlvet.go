package pdlvet

import "pdl/internal/analysis/vetkit"

// Analyzers returns the full pdlvet suite in reporting order.
func Analyzers() []*vetkit.Analyzer {
	return []*vetkit.Analyzer{LockOrder, DeviceIO, AtomicCounter, FencedCache}
}
