package pdlvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdl/internal/analysis/vetkit"
)

// hooks are the analyzer-specific callbacks the tracker fires while
// abstractly interpreting a function body. The lockSet arguments are
// live state: hooks must not mutate them.
type hooks struct {
	// onAcquire fires before an acquisition is applied to the state.
	onAcquire func(t *tracker, call *ast.CallExpr, op lockOp, before lockSet)
	// onCall fires at every non-lock call site; callee may be nil when
	// the target is dynamic (interface method values, func values).
	onCall func(call *ast.CallExpr, callee types.Object, held lockSet)
	// onStmt fires at every statement before it executes.
	onStmt func(stmt ast.Stmt, held lockSet)
	// onExit fires at every return (and at the closing brace of a body
	// that falls off the end).
	onExit func(pos token.Pos, held lockSet)
}

// tracker walks one function, maintaining the lock-held abstraction:
// straight-line Lock/Unlock effects, defer-registered releases
// (including releases inside deferred function literals), branch merges
// by intersection, and loop merges by union. Goroutine bodies launched
// with `go` are walked with an empty lock set — they run on their own
// stack.
type tracker struct {
	pass  *vetkit.Pass
	hooks hooks
	// file is the AST file containing the walked function, for resolving
	// //pdlvet:holds comments attached to function literals.
	file *ast.File
	// sorted holds the objects of slices the function passed to a
	// sorting call (sort.Ints, slices.Sort, sort.Slice, ...): ranging
	// over one of these yields ascending values.
	sorted map[types.Object]bool
	// loops is the stack of enclosing for/range statements.
	loops []ast.Stmt
}

// walkFunc interprets one function declaration, seeding the entry state
// from its //pdlvet:holds declaration.
func walkFunc(pass *vetkit.Pass, decl *ast.FuncDecl, h hooks) {
	if decl.Body == nil {
		return
	}
	t := &tracker{pass: pass, hooks: h, sorted: make(map[types.Object]bool)}
	for _, f := range pass.Files {
		if f.Pos() <= decl.Pos() && decl.Pos() <= f.End() {
			t.file = f
			break
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) > 0 {
			if pkg, ok := sel.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
				switch sel.Sel.Name {
				case "Ints", "Sort", "Slice", "SliceStable", "Float64s", "Strings":
					if arg, ok := call.Args[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[arg]; obj != nil {
							t.sorted[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	entry := lockSet{}
	for _, name := range vetkit.HoldsOf(decl) {
		if c := classByName(name); c != classNone {
			entry[c] = &heldLock{class: c, exclusive: true, entry: true, pos: decl.Pos(), shardIdx: -1}
		}
	}
	exit, terminated := t.walkStmts(decl.Body.List, entry)
	if !terminated && t.hooks.onExit != nil {
		t.hooks.onExit(decl.Body.Rbrace, exit)
	}
}

// walkStmts interprets a statement list, returning the fall-through
// state and whether every path through the list terminates (returns).
func (t *tracker) walkStmts(stmts []ast.Stmt, state lockSet) (lockSet, bool) {
	for _, s := range stmts {
		var term bool
		state, term = t.walkStmt(s, state)
		if term {
			return state, true
		}
	}
	return state, false
}

func (t *tracker) walkStmt(stmt ast.Stmt, state lockSet) (lockSet, bool) {
	if t.hooks.onStmt != nil {
		t.hooks.onStmt(stmt, state)
	}
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(t.pass.TypesInfo, call); ok {
				t.applyOp(call, op, state)
				return state, false
			}
		}
		t.visitExpr(s.X, state)
		return state, false

	case *ast.DeferStmt:
		t.applyDefer(s.Call, state)
		return state, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.visitExpr(r, state)
		}
		if t.hooks.onExit != nil {
			t.hooks.onExit(s.Pos(), state)
		}
		return state, true

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			t.visitExpr(e, state)
		}
		for _, e := range s.Lhs {
			t.visitExpr(e, state)
		}
		return state, false

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		t.visitExpr(s, state)
		return state, false

	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			t.walkStmts(lit.Body.List, t.seedLitHolds(lit, lockSet{}))
		}
		for _, a := range s.Call.Args {
			t.visitExpr(a, state)
		}
		return state, false

	case *ast.BlockStmt:
		return t.walkStmts(s.List, state)

	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, state)

	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = t.walkStmt(s.Init, state)
		}
		t.visitExpr(s.Cond, state)
		thenExit, thenTerm := t.walkStmts(s.Body.List, state.clone())
		elseExit, elseTerm := state, false
		if s.Else != nil {
			elseExit, elseTerm = t.walkStmt(s.Else, state.clone())
		}
		var falls []lockSet
		if !thenTerm {
			falls = append(falls, thenExit)
		}
		if !elseTerm {
			falls = append(falls, elseExit)
		}
		if len(falls) == 0 {
			return state, true
		}
		return intersect(falls), false

	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = t.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			t.visitExpr(s.Cond, state)
		}
		t.loops = append(t.loops, s)
		bodyExit, bodyTerm := t.walkStmts(s.Body.List, state.clone())
		if !bodyTerm {
			// Second abstract iteration: locks the body accumulated
			// (shard locks taken in a loop) are now visible at their own
			// acquisition sites, which is what the ascending-order check
			// keys on. Identical re-fired diagnostics dedup downstream.
			bodyExit, _ = t.walkStmts(s.Body.List, union(state, bodyExit))
		}
		t.loops = t.loops[:len(t.loops)-1]
		if s.Cond == nil && bodyTerm {
			// `for { ... }` whose body always returns: nothing falls out.
			return state, true
		}
		if bodyTerm {
			return state, false
		}
		return union(state, bodyExit), false

	case *ast.RangeStmt:
		t.visitExpr(s.X, state)
		t.loops = append(t.loops, s)
		bodyExit, bodyTerm := t.walkStmts(s.Body.List, state.clone())
		if !bodyTerm {
			bodyExit, _ = t.walkStmts(s.Body.List, union(state, bodyExit))
		}
		t.loops = t.loops[:len(t.loops)-1]
		if bodyTerm {
			return state, false
		}
		return union(state, bodyExit), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = t.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			t.visitExpr(s.Tag, state)
		}
		return t.walkCases(s.Body, state)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = t.walkStmt(s.Init, state)
		}
		return t.walkCases(s.Body, state)

	case *ast.SelectStmt:
		return t.walkCases(s.Body, state)

	default:
		return state, false
	}
}

// walkCases merges the bodies of a switch/select: the fall-through state
// is the intersection of the falling-through cases (plus the pre-switch
// state when no default exists, since no case may match).
func (t *tracker) walkCases(body *ast.BlockStmt, state lockSet) (lockSet, bool) {
	var falls []lockSet
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				t.visitExpr(e, state)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				t.walkStmt(cc.Comm, state.clone())
			}
			stmts = cc.Body
		}
		exit, term := t.walkStmts(stmts, state.clone())
		if !term {
			falls = append(falls, exit)
		}
	}
	if !hasDefault {
		falls = append(falls, state)
	}
	if len(falls) == 0 {
		return state, true
	}
	return intersect(falls), false
}

// applyOp applies one modeled Lock/Unlock to the state.
func (t *tracker) applyOp(call *ast.CallExpr, op lockOp, state lockSet) {
	if op.acquire {
		if t.hooks.onAcquire != nil {
			t.hooks.onAcquire(t, call, op, state)
		}
		if have, ok := state[op.class]; ok {
			// Multi-acquisition of the class (shard locks in a loop):
			// the set keeps one entry, now of unknown index.
			have.shardIdxKnown = false
			return
		}
		h := &heldLock{class: op.class, exclusive: op.exclusive, pos: call.Pos(), shardIdx: -1}
		if v, ok := constIndex(t.pass.TypesInfo, op.index); ok {
			h.shardIdx, h.shardIdxKnown = v, true
		}
		state[op.class] = h
		return
	}
	delete(state, op.class)
}

// seedLitHolds adds the lock classes a function literal's own
// //pdlvet:holds comment declares to its entry state. Like a
// declaration-level holds, the declared locks are the invoker's
// responsibility — the literal's body is checked assuming them.
func (t *tracker) seedLitHolds(lit *ast.FuncLit, state lockSet) lockSet {
	if t.file == nil {
		return state
	}
	for _, name := range vetkit.HoldsOfLit(t.pass.Fset, t.file, lit) {
		if c := classByName(name); c != classNone {
			if _, ok := state[c]; !ok {
				state[c] = &heldLock{class: c, exclusive: true, entry: true, pos: lit.Pos(), shardIdx: -1}
			}
		}
	}
	return state
}

// applyDefer handles a defer statement: a direct deferred unlock, or a
// deferred function literal whose body releases locks on return.
func (t *tracker) applyDefer(call *ast.CallExpr, state lockSet) {
	if op, ok := classifyLockCall(t.pass.TypesInfo, call); ok && !op.acquire {
		if h, ok := state[op.class]; ok {
			h.deferRelease = true
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if op, ok := classifyLockCall(t.pass.TypesInfo, c); ok && !op.acquire {
					if h, ok := state[op.class]; ok {
						h.deferRelease = true
					}
				}
			}
			return true
		})
	}
	// Other deferred calls run at return time, under whatever locks are
	// held then; they are not analyzed as calls at this program point.
}

// visitExpr scans an expression for calls, firing onCall and applying
// any lock operations buried in expression position. Function literals
// are walked with a clone of the current state (they typically run
// inline, e.g. sort.Slice comparators), plus any //pdlvet:holds
// directive on the line above the literal (callbacks invoked under a
// lock their runner acquires); their effects do not escape.
func (t *tracker) visitExpr(n ast.Node, state lockSet) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			t.walkStmts(e.Body.List, t.seedLitHolds(e, state.clone()))
			return false
		case *ast.CallExpr:
			if op, ok := classifyLockCall(t.pass.TypesInfo, e); ok {
				t.applyOp(e, op, state)
				return true
			}
			if t.hooks.onCall != nil {
				t.hooks.onCall(e, calleeOf(t.pass.TypesInfo, e), state)
			}
			return true
		}
		return true
	})
}
