package pdlvet

import (
	"go/ast"
	"go/types"
	"strings"

	"pdl/internal/analysis/vetkit"
)

// DeviceIO enforces the device-call discipline:
//
//   - no flash.Device operation may run while the mapTable lock or the
//     diff-cache lock is held — the mapping tables and the decoded-
//     differential cache are innermost state, and a device call under
//     either stalls every lock-free reader behind a flash I/O;
//   - device mutations (Program*, Erase, MarkBad) may only be issued
//     from the packages that own flash state transitions: the
//     page-update methods, the allocator, garbage collection, and the
//     device implementations themselves. Everything else (buffer pool,
//     B-tree, workloads, tools) goes through an ftl.Method;
//   - inside the core package, raw device reads (Read, ReadData,
//     ReadSpare, ReadBatch) may only be issued from the designated
//     verifying read funnels — functions whose doc comment carries a
//     `//pdlvet:ignore deviceio` directive. Everything else (foreground
//     reads, GC relocation, recovery and checkpoint scans) must go
//     through a funnel, so no read path can bypass spare-area
//     verification by construction.
var DeviceIO = &vetkit.Analyzer{
	Name: "deviceio",
	Doc: "check that flash.Device calls never run under the mapTable or diff-cache lock,\n" +
		"that device mutations stay inside the allowlisted FTL packages, and that core\n" +
		"reads the device only through its annotated verifying funnels",
	Run: runDeviceIO,
}

// deviceMethods is the full flash.Device operation surface the
// under-lock rule applies to.
var deviceMethods = map[string]bool{
	"Read": true, "ReadData": true, "ReadSpare": true, "ReadBatch": true,
	"Program": true, "ProgramBatch": true, "ProgramPartial": true, "ProgramSpare": true,
	"Erase": true, "MarkBad": true, "Sync": true,
}

// deviceMutations is the subset that changes flash state.
var deviceMutations = map[string]bool{
	"Program": true, "ProgramBatch": true, "ProgramPartial": true, "ProgramSpare": true,
	"Erase": true, "MarkBad": true,
}

// deviceReads is the subset the core-funnel rule applies to: reads that
// return page content a verifying layer must check before anyone trusts
// it.
var deviceReads = map[string]bool{
	"Read": true, "ReadData": true, "ReadSpare": true, "ReadBatch": true,
}

// mutationAllowlist names the package path elements allowed to issue
// device mutations: the FTL core and methods, the allocator, GC, the
// device implementations (including the fault-injection wrapper), and
// the conformance suite.
var mutationAllowlist = map[string]bool{
	"core": true, "ftl": true, "gc": true,
	"opu": true, "ipu": true, "ipl": true,
	"flash": true, "filedev": true, "faultdev": true, "ftltest": true,
}

// readFunnelPackages names the package path elements whose raw device
// reads must flow through an annotated verifying funnel.
var readFunnelPackages = map[string]bool{"core": true}

func runDeviceIO(pass *vetkit.Pass) error {
	parts := strings.Split(pass.Pkg.Path(), "/")
	pkgAllowed := mutationAllowlist[parts[len(parts)-1]]
	funneled := readFunnelPackages[parts[len(parts)-1]]
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			isFunnel := funnelDecl(fd)
			walkFunc(pass, fd, hooks{
				onCall: func(call *ast.CallExpr, callee types.Object, held lockSet) {
					name, ok := deviceCall(pass.TypesInfo, call)
					if !ok {
						return
					}
					for _, inner := range []lockClass{classMapTable, classDCache} {
						if _, bad := held[inner]; bad {
							pass.Reportf(call.Pos(),
								"device %s call while holding the %s lock: flash I/O must never run under the %s lock",
								name, inner, inner)
						}
					}
					if deviceMutations[name] && !pkgAllowed {
						pass.Reportf(call.Pos(),
							"device mutation %s outside the FTL packages (core/ftl/gc/opu/ipu/ipl/flash/faultdev): go through an ftl.Method",
							name)
					}
					if funneled && deviceReads[name] && !isFunnel {
						pass.Reportf(call.Pos(),
							"raw device read %s outside a verifying funnel: route it through a //pdlvet:ignore deviceio annotated funnel so the bytes get verified",
							name)
					}
				},
			})
		}
	}
	return nil
}

// funnelDecl reports whether fd is a designated raw-read funnel: its doc
// comment carries a `//pdlvet:ignore deviceio` directive. The directive
// doubles as the line-level suppression for the funnel's own call sites
// when it sits directly above them, but on the doc comment it blesses
// the whole function body, so a funnel may branch between several device
// read forms.
func funnelDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//pdlvet:ignore")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) > 0 && (fields[0] == "deviceio" || fields[0] == "all") {
			return true
		}
	}
	return false
}

// deviceCall reports whether call is a method call on a flash device —
// the Device interface or one of its implementations (Chip, the
// file-backed Device) — returning the method name.
func deviceCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !deviceMethods[name] {
		return "", false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if tn := namedTypeName(t); tn == "Chip" || tn == "Device" {
		return name, true
	}
	return "", false
}
