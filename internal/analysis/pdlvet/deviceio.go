package pdlvet

import (
	"go/ast"
	"go/types"
	"strings"

	"pdl/internal/analysis/vetkit"
)

// DeviceIO enforces the device-call discipline:
//
//   - no flash.Device operation may run while the mapTable lock or the
//     diff-cache lock is held — the mapping tables and the decoded-
//     differential cache are innermost state, and a device call under
//     either stalls every lock-free reader behind a flash I/O;
//   - device mutations (Program*, Erase, MarkBad) may only be issued
//     from the packages that own flash state transitions: the
//     page-update methods, the allocator, garbage collection, and the
//     device implementations themselves. Everything else (buffer pool,
//     B-tree, workloads, tools) goes through an ftl.Method.
var DeviceIO = &vetkit.Analyzer{
	Name: "deviceio",
	Doc: "check that flash.Device calls never run under the mapTable or diff-cache lock\n" +
		"and that device mutations stay inside the allowlisted FTL packages",
	Run: runDeviceIO,
}

// deviceMethods is the full flash.Device operation surface the
// under-lock rule applies to.
var deviceMethods = map[string]bool{
	"Read": true, "ReadData": true, "ReadSpare": true, "ReadBatch": true,
	"Program": true, "ProgramBatch": true, "ProgramPartial": true, "ProgramSpare": true,
	"Erase": true, "MarkBad": true, "Sync": true,
}

// deviceMutations is the subset that changes flash state.
var deviceMutations = map[string]bool{
	"Program": true, "ProgramBatch": true, "ProgramPartial": true, "ProgramSpare": true,
	"Erase": true, "MarkBad": true,
}

// mutationAllowlist names the package path elements allowed to issue
// device mutations: the FTL core and methods, the allocator, GC, the
// device implementations, and the conformance suite.
var mutationAllowlist = map[string]bool{
	"core": true, "ftl": true, "gc": true,
	"opu": true, "ipu": true, "ipl": true,
	"flash": true, "filedev": true, "ftltest": true,
}

func runDeviceIO(pass *vetkit.Pass) error {
	parts := strings.Split(pass.Pkg.Path(), "/")
	pkgAllowed := mutationAllowlist[parts[len(parts)-1]]
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			walkFunc(pass, fd, hooks{
				onCall: func(call *ast.CallExpr, callee types.Object, held lockSet) {
					name, ok := deviceCall(pass.TypesInfo, call)
					if !ok {
						return
					}
					for _, inner := range []lockClass{classMapTable, classDCache} {
						if _, bad := held[inner]; bad {
							pass.Reportf(call.Pos(),
								"device %s call while holding the %s lock: flash I/O must never run under the %s lock",
								name, inner, inner)
						}
					}
					if deviceMutations[name] && !pkgAllowed {
						pass.Reportf(call.Pos(),
							"device mutation %s outside the FTL packages (core/ftl/gc/opu/ipu/ipl/flash): go through an ftl.Method",
							name)
					}
				},
			})
		}
	}
	return nil
}

// deviceCall reports whether call is a method call on a flash device —
// the Device interface or one of its implementations (Chip, the
// file-backed Device) — returning the method name.
func deviceCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !deviceMethods[name] {
		return "", false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return "", false
	}
	if tn := namedTypeName(t); tn == "Chip" || tn == "Device" {
		return name, true
	}
	return "", false
}
