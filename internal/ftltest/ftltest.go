// Package ftltest provides a conformance test suite that every flash
// page-update method in this module must pass. The suite drives a method
// through load, random update, and read-back cycles while maintaining a
// shadow copy of the database in memory, and fails on any divergence. It
// deliberately sizes workloads to force garbage collection so relocation
// bugs cannot hide.
package ftltest

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pdl/internal/flash"
	"pdl/internal/ftl"
)

// Factory builds a method instance over the device for a database of
// numPages logical pages.
type Factory func(dev flash.Device, numPages int) (ftl.Method, error)

// DeviceFactory builds a flash device for the given geometry. The suite
// cleans the device up via t.Cleanup, so factories may hand out devices
// backed by real files (t.TempDir) as well as emulated chips.
type DeviceFactory func(t *testing.T, p flash.Params) flash.Device

// EmulatorDevice is the default DeviceFactory: a fresh in-memory chip.
func EmulatorDevice(t *testing.T, p flash.Params) flash.Device {
	return flash.NewChip(p)
}

// StripedDevice wraps a DeviceFactory into one that builds a
// flash.Striped of `channels` sub-devices, splitting the requested
// geometry evenly (NumBlocks must divide by channels; every geometry the
// suites use divides by 4). With channels == 1 it exercises the
// degenerate pass-through striping.
func StripedDevice(channels int, sub DeviceFactory) DeviceFactory {
	return func(t *testing.T, p flash.Params) flash.Device {
		t.Helper()
		if p.NumBlocks%channels != 0 {
			t.Fatalf("StripedDevice: %d blocks not divisible by %d channels", p.NumBlocks, channels)
		}
		sp := p
		sp.NumBlocks = p.NumBlocks / channels
		subs := make([]flash.Device, channels)
		for i := range subs {
			subs[i] = sub(t, sp)
		}
		dev, err := flash.NewStriped(subs...)
		if err != nil {
			t.Fatalf("NewStriped: %v", err)
		}
		return dev
	}
}

// SmallParams returns a small chip geometry used by the conformance suite:
// real page sizes but few blocks, so garbage collection happens quickly.
func SmallParams(numBlocks int) flash.Params {
	p := flash.DefaultParams()
	p.NumBlocks = numBlocks
	p.PagesPerBlock = 16
	p.DataSize = 512
	p.SpareSize = 32
	return p
}

// RunMethodSuite runs the full conformance suite against the factory over
// the in-memory emulator.
func RunMethodSuite(t *testing.T, factory Factory) {
	t.Helper()
	RunMethodSuiteOn(t, EmulatorDevice, factory)
}

// RunMethodSuiteOn runs the full conformance suite against the factory
// over devices built by newDevice — the emulator, the file-backed device,
// or any future backend; a method must behave identically on all of them.
func RunMethodSuiteOn(t *testing.T, newDevice DeviceFactory, factory Factory) {
	t.Helper()
	t.Run("LoadAndReadBack", func(t *testing.T) { testLoadAndReadBack(t, newDevice, factory) })
	t.Run("ReadUnwritten", func(t *testing.T) { testReadUnwritten(t, newDevice, factory) })
	t.Run("ArgumentValidation", func(t *testing.T) { testArgumentValidation(t, newDevice, factory) })
	t.Run("OverwriteVisibility", func(t *testing.T) { testOverwriteVisibility(t, newDevice, factory) })
	t.Run("RandomUpdatesMatchShadow", func(t *testing.T) { testRandomUpdates(t, newDevice, factory, 42) })
	t.Run("SmallRandomUpdatesMatchShadow", func(t *testing.T) { testSmallUpdates(t, newDevice, factory, 7) })
	t.Run("SurvivesHeavyGC", func(t *testing.T) { testHeavyGC(t, newDevice, factory) })
	t.Run("FlushThenRead", func(t *testing.T) { testFlushThenRead(t, newDevice, factory) })
	t.Run("PhysicalLegality", func(t *testing.T) { testPhysicalLegality(t, newDevice, factory) })
	t.Run("BatchWriteMatchesShadow", func(t *testing.T) { testBatchWrite(t, newDevice, factory) })
	t.Run("BatchReadMatchesSerial", func(t *testing.T) { testBatchRead(t, newDevice, factory) })
}

// RunDeviceBatchSuite runs the ProgramBatch half of the flash.Device
// contract against devices built by newDevice. Every backend — the
// emulator, the file-backed device, any future one — must make a batch
// indistinguishable from the same programs issued serially, validate the
// whole batch before touching any page, and reject duplicate PPNs.
func RunDeviceBatchSuite(t *testing.T, newDevice DeviceFactory) {
	t.Helper()
	t.Run("BatchMatchesSerial", func(t *testing.T) { testDevBatchMatchesSerial(t, newDevice) })
	t.Run("ValidationProgramsNothing", func(t *testing.T) { testDevBatchValidation(t, newDevice) })
	t.Run("DuplicatePPNRejected", func(t *testing.T) { testDevBatchDuplicate(t, newDevice) })
}

// RunDeviceReadBatchSuite runs the ReadBatch half of the flash.Device
// contract against devices built by newDevice. Every backend must make a
// batch fill its buffers exactly as the same Reads issued serially would,
// charge one read per page, validate the whole batch before filling any
// buffer, and accept duplicate PPNs.
func RunDeviceReadBatchSuite(t *testing.T, newDevice DeviceFactory) {
	t.Helper()
	t.Run("BatchMatchesSerial", func(t *testing.T) { testDevReadBatchMatchesSerial(t, newDevice) })
	t.Run("ValidationFillsNothing", func(t *testing.T) { testDevReadBatchValidation(t, newDevice) })
}

func testDevReadBatchMatchesSerial(t *testing.T, newDevice DeviceFactory) {
	dev := devBatchFor(t, newDevice)
	p := dev.Params()
	// Program a spread of pages across two blocks, leaving gaps so the
	// batch mixes programmed and erased pages.
	for i := 0; i < p.PagesPerBlock+4; i += 2 {
		pp := batchPattern(p, flash.PPN(i), 3)
		if err := dev.Program(pp.PPN, pp.Data, pp.Spare); err != nil {
			t.Fatalf("Program ppn %d: %v", pp.PPN, err)
		}
	}
	// The batch covers a contiguous ascending run (coalescible), a
	// duplicate PPN, out-of-order jumps, and every buffer shape: data+spare,
	// data only, spare only, both nil.
	var ppns []flash.PPN
	for i := 0; i <= p.PagesPerBlock+4; i++ {
		ppns = append(ppns, flash.PPN(i))
	}
	ppns = append(ppns, 3, p.PPNOf(1, 2), 0, 0)
	batch := make([]flash.PageRead, len(ppns))
	for i, ppn := range ppns {
		pr := flash.PageRead{PPN: ppn}
		switch {
		case i == 5:
			// Both buffers nil: address-validated, transfers nothing, but
			// still charged as one page read like every other element.
		case i%4 == 2:
			pr.Data = make([]byte, p.DataSize)
		case i%4 == 3:
			pr.Spare = make([]byte, p.SpareSize)
		default:
			pr.Data = make([]byte, p.DataSize)
			pr.Spare = make([]byte, p.SpareSize)
		}
		batch[i] = pr
	}
	before := dev.Stats()
	if err := dev.ReadBatch(batch); err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if got := dev.Stats().Sub(before).Reads; got != int64(len(batch)) {
		t.Errorf("batch of %d pages charged %d reads", len(batch), got)
	}
	data, spare := make([]byte, p.DataSize), make([]byte, p.SpareSize)
	for i, pr := range batch {
		if err := dev.Read(pr.PPN, data, spare); err != nil {
			t.Fatalf("serial Read ppn %d: %v", pr.PPN, err)
		}
		if pr.Data != nil && !bytes.Equal(pr.Data, data) {
			t.Errorf("element %d (ppn %d): batched data diverges from serial Read", i, pr.PPN)
		}
		if pr.Spare != nil && !bytes.Equal(pr.Spare, spare) {
			t.Errorf("element %d (ppn %d): batched spare diverges from serial Read", i, pr.PPN)
		}
	}
}

func testDevReadBatchValidation(t *testing.T, newDevice DeviceFactory) {
	dev := devBatchFor(t, newDevice)
	p := dev.Params()
	pp := batchPattern(p, 0, 9)
	if err := dev.Program(pp.PPN, pp.Data, pp.Spare); err != nil {
		t.Fatal(err)
	}
	sentinel := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = 0x77
		}
		return b
	}
	good := flash.PageRead{PPN: 0, Data: sentinel(p.DataSize), Spare: sentinel(p.SpareSize)}
	check := func(label string, batch []flash.PageRead, want error) {
		t.Helper()
		before := dev.Stats()
		if err := dev.ReadBatch(batch); !errors.Is(err, want) {
			t.Fatalf("%s: err = %v, want %v", label, err, want)
		}
		if got := dev.Stats().Sub(before).Reads; got != 0 {
			t.Errorf("%s: failed batch charged %d reads, want 0", label, got)
		}
		for i := range good.Data {
			if good.Data[i] != 0x77 {
				t.Fatalf("%s: failed batch filled a buffer (validation must precede transfer)", label)
			}
		}
	}
	check("out of range", []flash.PageRead{good, {PPN: flash.PPN(p.NumPages()), Data: make([]byte, p.DataSize)}}, flash.ErrOutOfRange)
	check("short data buffer", []flash.PageRead{good, {PPN: 1, Data: make([]byte, p.DataSize-1)}}, flash.ErrBufSize)
	check("short spare buffer", []flash.PageRead{good, {PPN: 1, Spare: make([]byte, p.SpareSize+1)}}, flash.ErrBufSize)
	if err := dev.MarkBad(p.NumBlocks - 1); err != nil {
		t.Fatal(err)
	}
	check("bad block", []flash.PageRead{good, {PPN: p.PPNOf(p.NumBlocks-1, 0), Data: make([]byte, p.DataSize)}}, flash.ErrBadBlock)
}

func devBatchFor(t *testing.T, newDevice DeviceFactory) flash.Device {
	t.Helper()
	dev := newDevice(t, SmallParams(8))
	t.Cleanup(func() { dev.Close() })
	return dev
}

// batchPattern builds a deterministic page program for ppn.
func batchPattern(p flash.Params, ppn flash.PPN, seed int64) flash.PageProgram {
	rng := rand.New(rand.NewSource(seed + int64(ppn)))
	pp := flash.PageProgram{PPN: ppn, Data: make([]byte, p.DataSize), Spare: make([]byte, p.SpareSize)}
	rng.Read(pp.Data)
	for i := range pp.Spare {
		pp.Spare[i] = 0xFF
	}
	pp.Spare[0] = byte(0xA0 | (ppn & 0x0F))
	return pp
}

func testDevBatchMatchesSerial(t *testing.T, newDevice DeviceFactory) {
	batched, serial := devBatchFor(t, newDevice), devBatchFor(t, newDevice)
	p := batched.Params()
	// A batch spanning two blocks, including one page with a nil spare.
	var batch []flash.PageProgram
	for i := 0; i < p.PagesPerBlock+3; i++ {
		pp := batchPattern(p, flash.PPN(i), 1)
		if i == 2 {
			pp.Spare = nil
		}
		batch = append(batch, pp)
	}
	before := batched.Stats()
	if err := batched.ProgramBatch(batch); err != nil {
		t.Fatalf("ProgramBatch: %v", err)
	}
	if got := batched.Stats().Sub(before).Writes; got != int64(len(batch)) {
		t.Errorf("batch of %d pages charged %d writes", len(batch), got)
	}
	for _, pp := range batch {
		if err := serial.Program(pp.PPN, pp.Data, pp.Spare); err != nil {
			t.Fatalf("serial Program ppn %d: %v", pp.PPN, err)
		}
	}
	data1, spare1 := make([]byte, p.DataSize), make([]byte, p.SpareSize)
	data2, spare2 := make([]byte, p.DataSize), make([]byte, p.SpareSize)
	for _, pp := range batch {
		if err := batched.Read(pp.PPN, data1, spare1); err != nil {
			t.Fatal(err)
		}
		if err := serial.Read(pp.PPN, data2, spare2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data1, data2) || !bytes.Equal(spare1, spare2) {
			t.Fatalf("ppn %d: batched and serial programs diverge", pp.PPN)
		}
	}
	// The spare-program budget must be charged identically: both devices
	// accept the same number of further spare programs.
	spare := make([]byte, p.SpareSize)
	for i := range spare {
		spare[i] = 0xFF
	}
	spare[1] = 0x00
	for {
		err1 := batched.ProgramSpare(batch[0].PPN, spare)
		err2 := serial.ProgramSpare(batch[0].PPN, spare)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("spare-program budget diverges: batched err %v, serial err %v", err1, err2)
		}
		if err1 != nil {
			break
		}
	}
}

func testDevBatchValidation(t *testing.T, newDevice DeviceFactory) {
	dev := devBatchFor(t, newDevice)
	p := dev.Params()
	// Pre-program page 1 so that re-programming it with fresh random data
	// is an AND conflict.
	taken := batchPattern(p, 1, 7)
	if err := dev.Program(taken.PPN, taken.Data, taken.Spare); err != nil {
		t.Fatal(err)
	}
	conflict := batchPattern(p, 1, 8)
	good0, good2 := batchPattern(p, 0, 7), batchPattern(p, 2, 7)
	err := dev.ProgramBatch([]flash.PageProgram{good0, conflict, good2})
	if !errors.Is(err, flash.ErrProgramConflict) {
		t.Fatalf("conflicting batch: err = %v, want ErrProgramConflict", err)
	}
	// Validation happens before programming: the good pages around the
	// conflict must be untouched (still erased).
	data := make([]byte, p.DataSize)
	for _, ppn := range []flash.PPN{0, 2} {
		if err := dev.ReadData(ppn, data); err != nil {
			t.Fatal(err)
		}
		for i, b := range data {
			if b != 0xFF {
				t.Fatalf("ppn %d byte %d = %#x after failed batch, want erased", ppn, i, b)
			}
		}
	}
	if err := dev.ProgramBatch([]flash.PageProgram{batchPattern(p, flash.PPN(p.NumPages()), 1)}); !errors.Is(err, flash.ErrOutOfRange) {
		t.Errorf("out-of-range batch: err = %v, want ErrOutOfRange", err)
	}
	short := batchPattern(p, 3, 1)
	short.Data = short.Data[:p.DataSize-1]
	if err := dev.ProgramBatch([]flash.PageProgram{short}); !errors.Is(err, flash.ErrBufSize) {
		t.Errorf("short-buffer batch: err = %v, want ErrBufSize", err)
	}
}

func testDevBatchDuplicate(t *testing.T, newDevice DeviceFactory) {
	dev := devBatchFor(t, newDevice)
	p := dev.Params()
	a, b := batchPattern(p, 4, 1), batchPattern(p, 4, 2)
	err := dev.ProgramBatch([]flash.PageProgram{a, b})
	if !errors.Is(err, flash.ErrDuplicatePPN) {
		t.Fatalf("duplicate batch: err = %v, want ErrDuplicatePPN", err)
	}
	data := make([]byte, p.DataSize)
	if err := dev.ReadData(4, data); err != nil {
		t.Fatal(err)
	}
	for i, c := range data {
		if c != 0xFF {
			t.Fatalf("byte %d = %#x after rejected duplicate batch, want erased", i, c)
		}
	}
}

func pagePattern(pid uint32, version int, size int) []byte {
	data := make([]byte, size)
	seed := int64(pid)<<20 | int64(version)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	return data
}

func mustNew(t *testing.T, newDevice DeviceFactory, factory Factory, numBlocks, numPages int) (ftl.Method, flash.Device) {
	t.Helper()
	dev := newDevice(t, SmallParams(numBlocks))
	t.Cleanup(func() { dev.Close() })
	m, err := factory(dev, numPages)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	return m, dev
}

func load(t *testing.T, m ftl.Method, numPages, size int) [][]byte {
	t.Helper()
	shadow := make([][]byte, numPages)
	for pid := 0; pid < numPages; pid++ {
		shadow[pid] = pagePattern(uint32(pid), 0, size)
		if err := m.WritePage(uint32(pid), shadow[pid]); err != nil {
			t.Fatalf("loading pid %d: %v", pid, err)
		}
	}
	return shadow
}

func verifyAll(t *testing.T, m ftl.Method, shadow [][]byte) {
	t.Helper()
	buf := make([]byte, len(shadow[0]))
	for pid := range shadow {
		if err := m.ReadPage(uint32(pid), buf); err != nil {
			t.Fatalf("reading pid %d: %v", pid, err)
		}
		if !bytes.Equal(buf, shadow[pid]) {
			t.Fatalf("pid %d: read-back differs from shadow", pid)
		}
	}
}

func testLoadAndReadBack(t *testing.T, newDevice DeviceFactory, factory Factory) {
	const numPages = 64
	m, dev := mustNew(t, newDevice, factory, 16, numPages)
	shadow := load(t, m, numPages, dev.Params().DataSize)
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	verifyAll(t, m, shadow)
}

func testReadUnwritten(t *testing.T, newDevice DeviceFactory, factory Factory) {
	m, dev := mustNew(t, newDevice, factory, 8, 16)
	buf := make([]byte, dev.Params().DataSize)
	if err := m.ReadPage(3, buf); !errors.Is(err, ftl.ErrNotWritten) {
		t.Errorf("read of unwritten page: err = %v, want ErrNotWritten", err)
	}
}

func testArgumentValidation(t *testing.T, newDevice DeviceFactory, factory Factory) {
	m, dev := mustNew(t, newDevice, factory, 8, 16)
	size := dev.Params().DataSize
	if err := m.WritePage(16, make([]byte, size)); !errors.Is(err, ftl.ErrPageRange) {
		t.Errorf("write pid out of range: %v", err)
	}
	if err := m.WritePage(0, make([]byte, size-1)); !errors.Is(err, ftl.ErrPageSize) {
		t.Errorf("write short buffer: %v", err)
	}
	if err := m.ReadPage(16, make([]byte, size)); !errors.Is(err, ftl.ErrPageRange) {
		t.Errorf("read pid out of range: %v", err)
	}
	if err := m.ReadPage(0, make([]byte, size+1)); !errors.Is(err, ftl.ErrPageSize) {
		t.Errorf("read long buffer: %v", err)
	}
}

func testOverwriteVisibility(t *testing.T, newDevice DeviceFactory, factory Factory) {
	const numPages = 8
	m, dev := mustNew(t, newDevice, factory, 8, numPages)
	size := dev.Params().DataSize
	load(t, m, numPages, size)
	// Overwrite page 3 five times; each version must be immediately
	// visible without an intervening flush (the write buffer must serve
	// reads, Step 2 of PDL_Reading).
	buf := make([]byte, size)
	for v := 1; v <= 5; v++ {
		want := pagePattern(3, v, size)
		if err := m.WritePage(3, want); err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		if err := m.ReadPage(3, buf); err != nil {
			t.Fatalf("read version %d: %v", v, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("version %d not visible after write", v)
		}
	}
}

func testRandomUpdates(t *testing.T, newDevice DeviceFactory, factory Factory, seed int64) {
	const numPages = 48
	m, dev := mustNew(t, newDevice, factory, 24, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, size)
	for i := 0; i < 600; i++ {
		pid := uint32(rng.Intn(numPages))
		switch rng.Intn(3) {
		case 0: // full overwrite
			next := pagePattern(pid, i+1, size)
			copy(shadow[pid], next)
			if err := m.WritePage(pid, next); err != nil {
				t.Fatalf("op %d write pid %d: %v", i, pid, err)
			}
		case 1: // partial update (the paper's update operation)
			if err := m.ReadPage(pid, buf); err != nil {
				t.Fatalf("op %d read pid %d: %v", i, pid, err)
			}
			if !bytes.Equal(buf, shadow[pid]) {
				t.Fatalf("op %d: pid %d diverged before update", i, pid)
			}
			off := rng.Intn(size - 16)
			rng.Read(buf[off : off+16])
			copy(shadow[pid], buf)
			if err := m.WritePage(pid, buf); err != nil {
				t.Fatalf("op %d update pid %d: %v", i, pid, err)
			}
		case 2: // read check
			if err := m.ReadPage(pid, buf); err != nil {
				t.Fatalf("op %d read pid %d: %v", i, pid, err)
			}
			if !bytes.Equal(buf, shadow[pid]) {
				t.Fatalf("op %d: pid %d read mismatch", i, pid)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	verifyAll(t, m, shadow)
}

func testSmallUpdates(t *testing.T, newDevice DeviceFactory, factory Factory, seed int64) {
	// Many tiny (2-byte) updates: exercises differential coalescing and
	// log-sector packing paths.
	const numPages = 16
	m, dev := mustNew(t, newDevice, factory, 16, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, size)
	for i := 0; i < 400; i++ {
		pid := uint32(rng.Intn(numPages))
		if err := m.ReadPage(pid, buf); err != nil {
			t.Fatalf("op %d read: %v", i, err)
		}
		off := rng.Intn(size - 2)
		buf[off] ^= 0x5A
		buf[off+1] ^= 0xA5
		copy(shadow[pid], buf)
		if err := m.WritePage(pid, buf); err != nil {
			t.Fatalf("op %d write: %v", i, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
}

func testHeavyGC(t *testing.T, newDevice DeviceFactory, factory Factory) {
	// Database sized at ~45% of flash (small enough to fit methods that
	// reserve half the chip, like IPL with a 50% log region); update
	// volume many times flash capacity, forcing repeated garbage
	// collection of every block.
	const numBlocks = 12
	params := SmallParams(numBlocks)
	numPages := numBlocks * params.PagesPerBlock * 45 / 100
	m, dev := mustNew(t, newDevice, factory, numBlocks, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < numBlocks*params.PagesPerBlock*8; i++ {
		pid := uint32(rng.Intn(numPages))
		next := pagePattern(pid, i+1, size)
		copy(shadow[pid], next)
		if err := m.WritePage(pid, next); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
	if dev.Stats().Erases == 0 {
		t.Error("no erases happened; GC was not exercised")
	}
}

func testFlushThenRead(t *testing.T, newDevice DeviceFactory, factory Factory) {
	const numPages = 8
	m, dev := mustNew(t, newDevice, factory, 8, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	next := pagePattern(2, 1, size)
	copy(shadow[2], next)
	if err := m.WritePage(2, next); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flushing twice must be harmless.
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
}

func testBatchWrite(t *testing.T, newDevice DeviceFactory, factory Factory) {
	// Methods that accept whole write batches (ftl.BatchWriter) must be
	// indistinguishable from serial WritePage calls in slice order,
	// including batches that rewrite the same pid twice and batches large
	// enough to force garbage collection. Methods without batch support
	// pass vacuously.
	const numPages = 48
	m, dev := mustNew(t, newDevice, factory, 16, numPages)
	bw, ok := m.(ftl.BatchWriter)
	if !ok {
		t.Skipf("%s does not implement ftl.BatchWriter", m.Name())
	}
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(17))
	buf := make([]byte, size)
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(24)
		batch := make([]ftl.PageWrite, n)
		for i := range batch {
			pid := uint32(rng.Intn(numPages))
			data := pagePattern(pid, round*1000+i+1, size)
			if rng.Intn(4) == 0 { // small update: exercises the buffered path
				copy(data, shadow[pid])
				off := rng.Intn(size - 8)
				rng.Read(data[off : off+8])
			}
			batch[i] = ftl.PageWrite{PID: pid, Data: data}
			copy(shadow[pid], data)
		}
		if err := bw.WriteBatch(batch); err != nil {
			t.Fatalf("round %d: WriteBatch: %v", round, err)
		}
		// Every write of the batch must be immediately visible, exactly as
		// after serial WritePage calls.
		for _, w := range batch {
			if err := m.ReadPage(w.PID, buf); err != nil {
				t.Fatalf("round %d: read pid %d: %v", round, w.PID, err)
			}
			if !bytes.Equal(buf, shadow[w.PID]) {
				t.Fatalf("round %d: pid %d not visible after batch", round, w.PID)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
}

func testBatchRead(t *testing.T, newDevice DeviceFactory, factory Factory) {
	// Methods that accept whole read batches (ftl.BatchReader) must fill
	// every buffer byte-identically to a loop of ReadPage calls, through
	// every state a page can be in — buffered differential, flushed
	// differential page, fresh base page, garbage-collected relocation —
	// and must surface ErrNotWritten like the loop would. Methods without
	// batch support pass vacuously.
	const numBlocks = 12
	params := SmallParams(numBlocks)
	numPages := numBlocks * params.PagesPerBlock * 45 / 100
	m, dev := mustNew(t, newDevice, factory, numBlocks, numPages)
	br, ok := m.(ftl.BatchReader)
	if !ok {
		t.Skipf("%s does not implement ftl.BatchReader", m.Name())
	}
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(29))
	serial := make([]byte, size)
	for round := 0; round < 40; round++ {
		// Mutate between read batches: full rewrites and small updates,
		// with enough volume across rounds to force garbage collection, so
		// batches read pages whose mappings GC has relocated.
		for i := 0; i < numPages/2; i++ {
			pid := uint32(rng.Intn(numPages))
			if rng.Intn(3) == 0 {
				next := pagePattern(pid, round*1000+i, size)
				copy(shadow[pid], next)
			} else {
				off := rng.Intn(size - 8)
				rng.Read(shadow[pid][off : off+8])
			}
			if err := m.WritePage(pid, shadow[pid]); err != nil {
				t.Fatalf("round %d write pid %d: %v", round, pid, err)
			}
		}
		if round%3 == 0 {
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		// A batch of random pids, duplicates included.
		n := 1 + rng.Intn(2*numPages)
		pids := make([]uint32, n)
		bufs := make([][]byte, n)
		for i := range pids {
			pids[i] = uint32(rng.Intn(numPages))
			bufs[i] = make([]byte, size)
		}
		if err := br.ReadBatch(pids, bufs); err != nil {
			t.Fatalf("round %d: ReadBatch: %v", round, err)
		}
		for i, pid := range pids {
			if !bytes.Equal(bufs[i], shadow[pid]) {
				t.Fatalf("round %d: batch element %d (pid %d) differs from shadow", round, i, pid)
			}
			if err := m.ReadPage(pid, serial); err != nil {
				t.Fatalf("round %d: serial read pid %d: %v", round, pid, err)
			}
			if !bytes.Equal(bufs[i], serial) {
				t.Fatalf("round %d: batch element %d (pid %d) differs from serial ReadPage", round, i, pid)
			}
		}
	}
	if dev.Stats().Erases == 0 {
		t.Error("no erases happened; batch reads were not exercised across GC")
	}

	// An unwritten pid in the batch fails like the serial loop does.
	fresh, _ := mustNew(t, newDevice, factory, 8, 16)
	fb, ok := fresh.(ftl.BatchReader)
	if !ok {
		return
	}
	if err := fresh.WritePage(0, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	err := fb.ReadBatch([]uint32{0, 5}, [][]byte{make([]byte, size), make([]byte, size)})
	if !errors.Is(err, ftl.ErrNotWritten) {
		t.Errorf("batch with unwritten pid: err = %v, want ErrNotWritten", err)
	}
	if err := fb.ReadBatch([]uint32{0, 1}, [][]byte{make([]byte, size)}); err == nil {
		t.Error("mismatched pids/bufs lengths accepted")
	}
}

func testPhysicalLegality(t *testing.T, newDevice DeviceFactory, factory Factory) {
	// The emulator returns ErrProgramConflict on any physically illegal
	// program; a clean run of a write-heavy workload certifies that the
	// method never overwrites programmed bits without an erase.
	const numPages = 24
	m, dev := mustNew(t, newDevice, factory, 8, numPages)
	size := dev.Params().DataSize
	load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		pid := uint32(rng.Intn(numPages))
		if err := m.WritePage(pid, pagePattern(pid, i+1, size)); err != nil {
			if errors.Is(err, flash.ErrProgramConflict) {
				t.Fatalf("op %d: physically illegal program: %v", i, err)
			}
			t.Fatalf("op %d: %v", i, err)
		}
	}
}
