// Package ftltest provides a conformance test suite that every flash
// page-update method in this module must pass. The suite drives a method
// through load, random update, and read-back cycles while maintaining a
// shadow copy of the database in memory, and fails on any divergence. It
// deliberately sizes workloads to force garbage collection so relocation
// bugs cannot hide.
package ftltest

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pdl/internal/flash"
	"pdl/internal/ftl"
)

// Factory builds a method instance over the device for a database of
// numPages logical pages.
type Factory func(dev flash.Device, numPages int) (ftl.Method, error)

// DeviceFactory builds a flash device for the given geometry. The suite
// cleans the device up via t.Cleanup, so factories may hand out devices
// backed by real files (t.TempDir) as well as emulated chips.
type DeviceFactory func(t *testing.T, p flash.Params) flash.Device

// EmulatorDevice is the default DeviceFactory: a fresh in-memory chip.
func EmulatorDevice(t *testing.T, p flash.Params) flash.Device {
	return flash.NewChip(p)
}

// SmallParams returns a small chip geometry used by the conformance suite:
// real page sizes but few blocks, so garbage collection happens quickly.
func SmallParams(numBlocks int) flash.Params {
	p := flash.DefaultParams()
	p.NumBlocks = numBlocks
	p.PagesPerBlock = 16
	p.DataSize = 512
	p.SpareSize = 32
	return p
}

// RunMethodSuite runs the full conformance suite against the factory over
// the in-memory emulator.
func RunMethodSuite(t *testing.T, factory Factory) {
	t.Helper()
	RunMethodSuiteOn(t, EmulatorDevice, factory)
}

// RunMethodSuiteOn runs the full conformance suite against the factory
// over devices built by newDevice — the emulator, the file-backed device,
// or any future backend; a method must behave identically on all of them.
func RunMethodSuiteOn(t *testing.T, newDevice DeviceFactory, factory Factory) {
	t.Helper()
	t.Run("LoadAndReadBack", func(t *testing.T) { testLoadAndReadBack(t, newDevice, factory) })
	t.Run("ReadUnwritten", func(t *testing.T) { testReadUnwritten(t, newDevice, factory) })
	t.Run("ArgumentValidation", func(t *testing.T) { testArgumentValidation(t, newDevice, factory) })
	t.Run("OverwriteVisibility", func(t *testing.T) { testOverwriteVisibility(t, newDevice, factory) })
	t.Run("RandomUpdatesMatchShadow", func(t *testing.T) { testRandomUpdates(t, newDevice, factory, 42) })
	t.Run("SmallRandomUpdatesMatchShadow", func(t *testing.T) { testSmallUpdates(t, newDevice, factory, 7) })
	t.Run("SurvivesHeavyGC", func(t *testing.T) { testHeavyGC(t, newDevice, factory) })
	t.Run("FlushThenRead", func(t *testing.T) { testFlushThenRead(t, newDevice, factory) })
	t.Run("PhysicalLegality", func(t *testing.T) { testPhysicalLegality(t, newDevice, factory) })
}

func pagePattern(pid uint32, version int, size int) []byte {
	data := make([]byte, size)
	seed := int64(pid)<<20 | int64(version)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	return data
}

func mustNew(t *testing.T, newDevice DeviceFactory, factory Factory, numBlocks, numPages int) (ftl.Method, flash.Device) {
	t.Helper()
	dev := newDevice(t, SmallParams(numBlocks))
	t.Cleanup(func() { dev.Close() })
	m, err := factory(dev, numPages)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	return m, dev
}

func load(t *testing.T, m ftl.Method, numPages, size int) [][]byte {
	t.Helper()
	shadow := make([][]byte, numPages)
	for pid := 0; pid < numPages; pid++ {
		shadow[pid] = pagePattern(uint32(pid), 0, size)
		if err := m.WritePage(uint32(pid), shadow[pid]); err != nil {
			t.Fatalf("loading pid %d: %v", pid, err)
		}
	}
	return shadow
}

func verifyAll(t *testing.T, m ftl.Method, shadow [][]byte) {
	t.Helper()
	buf := make([]byte, len(shadow[0]))
	for pid := range shadow {
		if err := m.ReadPage(uint32(pid), buf); err != nil {
			t.Fatalf("reading pid %d: %v", pid, err)
		}
		if !bytes.Equal(buf, shadow[pid]) {
			t.Fatalf("pid %d: read-back differs from shadow", pid)
		}
	}
}

func testLoadAndReadBack(t *testing.T, newDevice DeviceFactory, factory Factory) {
	const numPages = 64
	m, dev := mustNew(t, newDevice, factory, 16, numPages)
	shadow := load(t, m, numPages, dev.Params().DataSize)
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	verifyAll(t, m, shadow)
}

func testReadUnwritten(t *testing.T, newDevice DeviceFactory, factory Factory) {
	m, dev := mustNew(t, newDevice, factory, 8, 16)
	buf := make([]byte, dev.Params().DataSize)
	if err := m.ReadPage(3, buf); !errors.Is(err, ftl.ErrNotWritten) {
		t.Errorf("read of unwritten page: err = %v, want ErrNotWritten", err)
	}
}

func testArgumentValidation(t *testing.T, newDevice DeviceFactory, factory Factory) {
	m, dev := mustNew(t, newDevice, factory, 8, 16)
	size := dev.Params().DataSize
	if err := m.WritePage(16, make([]byte, size)); !errors.Is(err, ftl.ErrPageRange) {
		t.Errorf("write pid out of range: %v", err)
	}
	if err := m.WritePage(0, make([]byte, size-1)); !errors.Is(err, ftl.ErrPageSize) {
		t.Errorf("write short buffer: %v", err)
	}
	if err := m.ReadPage(16, make([]byte, size)); !errors.Is(err, ftl.ErrPageRange) {
		t.Errorf("read pid out of range: %v", err)
	}
	if err := m.ReadPage(0, make([]byte, size+1)); !errors.Is(err, ftl.ErrPageSize) {
		t.Errorf("read long buffer: %v", err)
	}
}

func testOverwriteVisibility(t *testing.T, newDevice DeviceFactory, factory Factory) {
	const numPages = 8
	m, dev := mustNew(t, newDevice, factory, 8, numPages)
	size := dev.Params().DataSize
	load(t, m, numPages, size)
	// Overwrite page 3 five times; each version must be immediately
	// visible without an intervening flush (the write buffer must serve
	// reads, Step 2 of PDL_Reading).
	buf := make([]byte, size)
	for v := 1; v <= 5; v++ {
		want := pagePattern(3, v, size)
		if err := m.WritePage(3, want); err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		if err := m.ReadPage(3, buf); err != nil {
			t.Fatalf("read version %d: %v", v, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("version %d not visible after write", v)
		}
	}
}

func testRandomUpdates(t *testing.T, newDevice DeviceFactory, factory Factory, seed int64) {
	const numPages = 48
	m, dev := mustNew(t, newDevice, factory, 24, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, size)
	for i := 0; i < 600; i++ {
		pid := uint32(rng.Intn(numPages))
		switch rng.Intn(3) {
		case 0: // full overwrite
			next := pagePattern(pid, i+1, size)
			copy(shadow[pid], next)
			if err := m.WritePage(pid, next); err != nil {
				t.Fatalf("op %d write pid %d: %v", i, pid, err)
			}
		case 1: // partial update (the paper's update operation)
			if err := m.ReadPage(pid, buf); err != nil {
				t.Fatalf("op %d read pid %d: %v", i, pid, err)
			}
			if !bytes.Equal(buf, shadow[pid]) {
				t.Fatalf("op %d: pid %d diverged before update", i, pid)
			}
			off := rng.Intn(size - 16)
			rng.Read(buf[off : off+16])
			copy(shadow[pid], buf)
			if err := m.WritePage(pid, buf); err != nil {
				t.Fatalf("op %d update pid %d: %v", i, pid, err)
			}
		case 2: // read check
			if err := m.ReadPage(pid, buf); err != nil {
				t.Fatalf("op %d read pid %d: %v", i, pid, err)
			}
			if !bytes.Equal(buf, shadow[pid]) {
				t.Fatalf("op %d: pid %d read mismatch", i, pid)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	verifyAll(t, m, shadow)
}

func testSmallUpdates(t *testing.T, newDevice DeviceFactory, factory Factory, seed int64) {
	// Many tiny (2-byte) updates: exercises differential coalescing and
	// log-sector packing paths.
	const numPages = 16
	m, dev := mustNew(t, newDevice, factory, 16, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, size)
	for i := 0; i < 400; i++ {
		pid := uint32(rng.Intn(numPages))
		if err := m.ReadPage(pid, buf); err != nil {
			t.Fatalf("op %d read: %v", i, err)
		}
		off := rng.Intn(size - 2)
		buf[off] ^= 0x5A
		buf[off+1] ^= 0xA5
		copy(shadow[pid], buf)
		if err := m.WritePage(pid, buf); err != nil {
			t.Fatalf("op %d write: %v", i, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
}

func testHeavyGC(t *testing.T, newDevice DeviceFactory, factory Factory) {
	// Database sized at ~45% of flash (small enough to fit methods that
	// reserve half the chip, like IPL with a 50% log region); update
	// volume many times flash capacity, forcing repeated garbage
	// collection of every block.
	const numBlocks = 12
	params := SmallParams(numBlocks)
	numPages := numBlocks * params.PagesPerBlock * 45 / 100
	m, dev := mustNew(t, newDevice, factory, numBlocks, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < numBlocks*params.PagesPerBlock*8; i++ {
		pid := uint32(rng.Intn(numPages))
		next := pagePattern(pid, i+1, size)
		copy(shadow[pid], next)
		if err := m.WritePage(pid, next); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
	if dev.Stats().Erases == 0 {
		t.Error("no erases happened; GC was not exercised")
	}
}

func testFlushThenRead(t *testing.T, newDevice DeviceFactory, factory Factory) {
	const numPages = 8
	m, dev := mustNew(t, newDevice, factory, 8, numPages)
	size := dev.Params().DataSize
	shadow := load(t, m, numPages, size)
	next := pagePattern(2, 1, size)
	copy(shadow[2], next)
	if err := m.WritePage(2, next); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flushing twice must be harmless.
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, m, shadow)
}

func testPhysicalLegality(t *testing.T, newDevice DeviceFactory, factory Factory) {
	// The emulator returns ErrProgramConflict on any physically illegal
	// program; a clean run of a write-heavy workload certifies that the
	// method never overwrites programmed bits without an erase.
	const numPages = 24
	m, dev := mustNew(t, newDevice, factory, 8, numPages)
	size := dev.Params().DataSize
	load(t, m, numPages, size)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		pid := uint32(rng.Intn(numPages))
		if err := m.WritePage(pid, pagePattern(pid, i+1, size)); err != nil {
			if errors.Is(err, flash.ErrProgramConflict) {
				t.Fatalf("op %d: physically illegal program: %v", i, err)
			}
			t.Fatalf("op %d: %v", i, err)
		}
	}
}
