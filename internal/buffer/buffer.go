// Package buffer implements an LRU buffer pool over a flash page-update
// method, playing the role of the DBMS buffer in the paper's architecture
// (Figure 10). Experiment 7 varies this pool's size from 0.1% to 10% of the
// database; the other experiments bypass buffering entirely, which the
// paper arranges by designing the update operation as read-change-write.
package buffer

import (
	"container/list"
	"errors"
	"fmt"

	"pdl/internal/ftl"
)

// ErrClosed reports use of a closed pool.
var ErrClosed = errors.New("buffer: pool is closed")

// frame is one cached logical page.
type frame struct {
	pid   uint32
	data  []byte
	dirty bool
	elem  *list.Element
}

// Pool is a fixed-capacity LRU buffer pool. Dirty pages are written back
// through the underlying method on eviction and on Flush.
//
// Pool is not safe for concurrent use; the storage layers in this module
// are single-threaded, like the I/O path of the paper's experiments.
type Pool struct {
	method   ftl.Method
	capacity int
	frames   map[uint32]*frame
	lru      *list.List // front = most recently used
	pageSize int
	closed   bool

	hits, misses, evictions, writebacks int64
}

// NewPool builds a pool of capacity pages over method.
func NewPool(method ftl.Method, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("buffer: capacity must be positive, got %d", capacity)
	}
	return &Pool{
		method:   method,
		capacity: capacity,
		frames:   make(map[uint32]*frame, capacity),
		lru:      list.New(),
		pageSize: method.PageSize(),
	}, nil
}

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int { return len(p.frames) }

// PageSize returns the logical page size.
func (p *Pool) PageSize() int { return p.pageSize }

// Method returns the underlying page-update method.
func (p *Pool) Method() ftl.Method { return p.method }

// Stats describes pool effectiveness.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// Stats returns the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Writebacks: p.writebacks}
}

// Get returns the content of logical page pid, faulting it in on a miss.
// The returned slice aliases the frame; callers that modify it must call
// MarkDirty before the page can be evicted.
func (p *Pool) Get(pid uint32) ([]byte, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if f, ok := p.frames[pid]; ok {
		p.hits++
		p.lru.MoveToFront(f.elem)
		return f.data, nil
	}
	p.misses++
	f, err := p.allocFrame(pid)
	if err != nil {
		return nil, err
	}
	if err := p.method.ReadPage(pid, f.data); err != nil {
		p.dropFrame(f)
		return nil, err
	}
	return f.data, nil
}

// GetNew returns a zeroed frame for a page being created, without reading
// flash (the page may not exist there yet).
func (p *Pool) GetNew(pid uint32) ([]byte, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if f, ok := p.frames[pid]; ok {
		p.hits++
		p.lru.MoveToFront(f.elem)
		return f.data, nil
	}
	p.misses++
	f, err := p.allocFrame(pid)
	if err != nil {
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.dirty = true
	return f.data, nil
}

// MarkDirty records that pid's frame has been modified.
func (p *Pool) MarkDirty(pid uint32) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("buffer: MarkDirty(%d): page not resident", pid)
	}
	f.dirty = true
	return nil
}

// Flush writes back every dirty frame and then flushes the method's own
// buffers (the write-through chain of section 4.5).
func (p *Pool) Flush() error {
	if p.closed {
		return ErrClosed
	}
	for _, f := range p.frames {
		if !f.dirty {
			continue
		}
		if err := p.method.WritePage(f.pid, f.data); err != nil {
			return err
		}
		p.writebacks++
		f.dirty = false
	}
	return p.method.Flush()
}

// Close flushes and invalidates the pool.
func (p *Pool) Close() error {
	if p.closed {
		return nil
	}
	if err := p.Flush(); err != nil {
		return err
	}
	p.closed = true
	return nil
}

// allocFrame returns a resident frame for pid, evicting the LRU victim if
// the pool is full.
func (p *Pool) allocFrame(pid uint32) (*frame, error) {
	if len(p.frames) >= p.capacity {
		victim := p.lru.Back()
		if victim == nil {
			return nil, errors.New("buffer: pool full with no evictable frame")
		}
		vf := victim.Value.(*frame)
		if vf.dirty {
			if err := p.method.WritePage(vf.pid, vf.data); err != nil {
				return nil, fmt.Errorf("buffer: evicting pid %d: %w", vf.pid, err)
			}
			p.writebacks++
		}
		p.evictions++
		p.dropFrame(vf)
	}
	f := &frame{pid: pid, data: make([]byte, p.pageSize)}
	f.elem = p.lru.PushFront(f)
	p.frames[pid] = f
	return f, nil
}

func (p *Pool) dropFrame(f *frame) {
	p.lru.Remove(f.elem)
	delete(p.frames, f.pid)
}
