// Package buffer implements an LRU buffer pool over a flash page-update
// method, playing the role of the DBMS buffer in the paper's architecture
// (Figure 10). Experiment 7 varies this pool's size from 0.1% to 10% of the
// database; the other experiments bypass buffering entirely, which the
// paper arranges by designing the update operation as read-change-write.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"pdl/internal/ftl"
)

// ErrClosed reports use of a closed pool.
var ErrClosed = errors.New("buffer: pool is closed")

// frame is one cached logical page.
type frame struct {
	pid   uint32
	data  []byte
	dirty bool
	elem  *list.Element
}

// Pool is a fixed-capacity LRU buffer pool. Dirty pages are written back
// through the underlying method on eviction and on Flush. Write-back is
// batch-first: dirty frames are collected in ascending pid order — so the
// device sees a deterministic, reproducible write pattern — and handed to
// the method as one WriteBatch when it implements ftl.BatchWriter (the PDL
// store), falling back to per-page WritePage calls in the same pid order
// otherwise.
//
// Pool is not safe for concurrent use; the storage layers in this module
// are single-threaded, like the I/O path of the paper's experiments.
type Pool struct {
	method   ftl.Method
	batcher  ftl.BatchWriter // method, if it accepts write batches; nil otherwise
	breader  ftl.BatchReader // method, if it accepts read batches; nil otherwise
	capacity int
	frames   map[uint32]*frame
	lru      *list.List // front = most recently used
	pageSize int
	// evictionBatch is how many dirty frames one dirty eviction may write
	// back together (write-back clustering); see Options.
	evictionBatch int
	// readahead is the speculative prefetch window storage layers may use
	// (0 = off); see Options.
	readahead int
	closed    bool

	hits, misses, evictions, writebacks, readaheads int64
}

// Options tunes a pool beyond its capacity.
type Options struct {
	// EvictionBatch enables write-back clustering under eviction pressure:
	// when the pool must evict a dirty victim, up to EvictionBatch dirty
	// frames from the cold (LRU) end — the victim included — are written
	// back together in one pid-ordered batch, and only the victim leaves
	// the pool. The clustered frames stay resident but clean, so the next
	// evictions find clean victims and cost no device work. 0 or 1
	// preserves the classic evict-one-write-one behavior (the default).
	// Clustering never changes page contents, only when a still-resident
	// dirty page is reflected; a page re-dirtied after an early write-back
	// costs one extra reflection, which is why it is opt-in.
	EvictionBatch int
	// Readahead is the speculative prefetch window for storage layers
	// that scan (the B+-tree's Range walks its leaf chain with it): when
	// positive, such layers call Pool.Readahead for up to Readahead pages
	// past their current position, which the pool faults in as one method
	// ReadBatch. 0 (the default) disables readahead, preserving strict
	// demand paging and the paper's read counts. Readahead never evicts
	// more of the pool than the window and never changes results — only
	// when pages are faulted, and in how many device operations.
	Readahead int
}

// NewPool builds a pool of capacity pages over method with default
// options.
func NewPool(method ftl.Method, capacity int) (*Pool, error) {
	return NewPoolOpts(method, capacity, Options{})
}

// NewPoolOpts builds a pool of capacity pages over method.
func NewPoolOpts(method ftl.Method, capacity int, opts Options) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("buffer: capacity must be positive, got %d", capacity)
	}
	eb := opts.EvictionBatch
	if eb < 1 {
		eb = 1
	}
	ra := opts.Readahead
	if ra < 0 {
		ra = 0
	}
	p := &Pool{
		method:        method,
		capacity:      capacity,
		frames:        make(map[uint32]*frame, capacity),
		lru:           list.New(),
		pageSize:      method.PageSize(),
		evictionBatch: eb,
		readahead:     ra,
	}
	if bw, ok := method.(ftl.BatchWriter); ok {
		p.batcher = bw
	}
	if br, ok := method.(ftl.BatchReader); ok {
		p.breader = br
	}
	return p, nil
}

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int { return len(p.frames) }

// PageSize returns the logical page size.
func (p *Pool) PageSize() int { return p.pageSize }

// Method returns the underlying page-update method.
func (p *Pool) Method() ftl.Method { return p.method }

// Stats describes pool effectiveness.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	// Readaheads counts pages faulted in speculatively by Readahead
	// (misses counts only demand faults).
	Readaheads int64
}

// Stats returns the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions,
		Writebacks: p.writebacks, Readaheads: p.readaheads}
}

// ReadaheadWindow returns the configured speculative prefetch window
// (0 = readahead off); scanning storage layers consult it.
func (p *Pool) ReadaheadWindow() int { return p.readahead }

// Get returns the content of logical page pid, faulting it in on a miss.
// The returned slice aliases the frame; callers that modify it must call
// MarkDirty before the page can be evicted.
func (p *Pool) Get(pid uint32) ([]byte, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if f, ok := p.frames[pid]; ok {
		p.hits++
		p.lru.MoveToFront(f.elem)
		return f.data, nil
	}
	p.misses++
	f, err := p.allocFrame(pid)
	if err != nil {
		return nil, err
	}
	if err := p.method.ReadPage(pid, f.data); err != nil {
		p.dropFrame(f)
		return nil, err
	}
	return f.data, nil
}

// GetMany returns the contents of the given logical pages, faulting all
// misses in together: when the method accepts read batches
// (ftl.BatchReader, the PDL store), every missing page of the call becomes
// one method ReadBatch — one device batch operation instead of one read
// per page — with a per-page ReadPage fallback otherwise. The returned
// slices alias pool frames exactly like Get's; duplicates are allowed and
// alias the same frame. len(pids) must not exceed the pool capacity, so
// every returned frame is resident simultaneously. On error no new pages
// are resident (though eviction write-backs may already have happened).
func (p *Pool) GetMany(pids []uint32) ([][]byte, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if len(pids) > p.capacity {
		return nil, fmt.Errorf("buffer: GetMany of %d pages exceeds pool capacity %d", len(pids), p.capacity)
	}
	out := make([][]byte, len(pids))
	var missPids []uint32
	var missFrames []*frame
	var inflight map[uint32]bool // misses of this call, not yet read
	for i, pid := range pids {
		if f, ok := p.frames[pid]; ok {
			// A duplicate of a miss from this same call aliases the frame
			// but is not a cache hit — the device read is still pending.
			if !inflight[pid] {
				p.hits++
				p.lru.MoveToFront(f.elem)
			}
			out[i] = f.data
			continue
		}
		p.misses++
		f, err := p.allocFrame(pid)
		if err != nil {
			p.dropFrames(missFrames)
			return nil, err
		}
		out[i] = f.data
		missPids = append(missPids, pid)
		missFrames = append(missFrames, f)
		if inflight == nil {
			inflight = make(map[uint32]bool)
		}
		inflight[pid] = true
	}
	if err := p.faultIn(missPids, missFrames); err != nil {
		p.dropFrames(missFrames)
		return nil, err
	}
	return out, nil
}

// Readahead speculatively faults the given pages into the pool (one
// method ReadBatch when available), skipping pages already resident and
// capping the faulted count at half the pool capacity — a speculation
// must never wipe out the resident set it is meant to serve. It returns
// the number of pids covered (resident after the call): a prefix of pids,
// so callers advancing a prefetch window know exactly where the cap
// stopped it (Stats().Readaheads counts the pages actually faulted).
// Unlike Get, resident pages are not promoted in the LRU — a prefetch is
// not a use. Callers must only name pages that have been written; an
// unwritten pid fails the whole call.
func (p *Pool) Readahead(pids []uint32) (int, error) {
	if p.closed {
		return 0, ErrClosed
	}
	limit := p.capacity / 2
	if limit < 1 {
		limit = 1
	}
	covered := 0
	var missPids []uint32
	var missFrames []*frame
	for _, pid := range pids {
		if _, ok := p.frames[pid]; ok {
			covered++
			continue
		}
		if len(missPids) >= limit {
			break
		}
		f, err := p.allocFrame(pid)
		if err != nil {
			p.dropFrames(missFrames)
			return 0, err
		}
		missPids = append(missPids, pid)
		missFrames = append(missFrames, f)
		covered++
	}
	if err := p.faultIn(missPids, missFrames); err != nil {
		p.dropFrames(missFrames)
		return 0, err
	}
	p.readaheads += int64(len(missPids))
	return covered, nil
}

// faultIn reads the given pages into their freshly allocated frames, as
// one method ReadBatch when the method supports it.
func (p *Pool) faultIn(pids []uint32, frames []*frame) error {
	switch {
	case len(pids) == 0:
		return nil
	case p.breader != nil && len(pids) > 1:
		bufs := make([][]byte, len(frames))
		for i, f := range frames {
			bufs[i] = f.data
		}
		return p.breader.ReadBatch(pids, bufs)
	default:
		for i, f := range frames {
			if err := p.method.ReadPage(pids[i], f.data); err != nil {
				return err
			}
		}
		return nil
	}
}

func (p *Pool) dropFrames(frames []*frame) {
	for _, f := range frames {
		p.dropFrame(f)
	}
}

// GetNew returns a zeroed frame for a page being created, without reading
// flash (the page may not exist there yet).
func (p *Pool) GetNew(pid uint32) ([]byte, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if f, ok := p.frames[pid]; ok {
		p.hits++
		p.lru.MoveToFront(f.elem)
		return f.data, nil
	}
	p.misses++
	f, err := p.allocFrame(pid)
	if err != nil {
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.dirty = true
	return f.data, nil
}

// MarkDirty records that pid's frame has been modified.
func (p *Pool) MarkDirty(pid uint32) error {
	f, ok := p.frames[pid]
	if !ok {
		return fmt.Errorf("buffer: MarkDirty(%d): page not resident", pid)
	}
	f.dirty = true
	return nil
}

// Flush writes back every dirty frame — in ascending pid order, as one
// method WriteBatch when available — and then flushes the method's own
// buffers (the write-through chain of section 4.5).
func (p *Pool) Flush() error {
	if p.closed {
		return ErrClosed
	}
	var dirty []uint32
	for pid, f := range p.frames {
		if f.dirty {
			dirty = append(dirty, pid)
		}
	}
	if err := p.writeBack(dirty); err != nil {
		return err
	}
	return p.method.Flush()
}

// writeBack reflects the given resident frames into the method, sorting
// them into ascending pid order first (the frame map iterates in random
// order; sorted write-back makes the device's write pattern — and every
// test depending on it — reproducible) and marking them clean. It is the
// single funnel both Flush and eviction clustering go through.
func (p *Pool) writeBack(pids []uint32) error {
	if len(pids) == 0 {
		return nil
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	if p.batcher != nil && len(pids) > 1 {
		batch := make([]ftl.PageWrite, len(pids))
		for i, pid := range pids {
			batch[i] = ftl.PageWrite{PID: pid, Data: p.frames[pid].data}
		}
		if err := p.batcher.WriteBatch(batch); err != nil {
			return err
		}
		for _, pid := range pids {
			p.frames[pid].dirty = false
			p.writebacks++
		}
		return nil
	}
	for _, pid := range pids {
		f := p.frames[pid]
		if err := p.method.WritePage(f.pid, f.data); err != nil {
			return err
		}
		p.writebacks++
		f.dirty = false
	}
	return nil
}

// Close flushes and invalidates the pool.
func (p *Pool) Close() error {
	if p.closed {
		return nil
	}
	if err := p.Flush(); err != nil {
		return err
	}
	p.closed = true
	return nil
}

// allocFrame returns a resident frame for pid, evicting the LRU victim if
// the pool is full. A dirty victim is written back first; with
// Options.EvictionBatch > 1 the write-back clusters further dirty frames
// from the cold end of the LRU into the same pid-ordered batch, so the
// evictions that follow find clean victims.
func (p *Pool) allocFrame(pid uint32) (*frame, error) {
	if len(p.frames) >= p.capacity {
		victim := p.lru.Back()
		if victim == nil {
			return nil, errors.New("buffer: pool full with no evictable frame")
		}
		vf := victim.Value.(*frame)
		if vf.dirty {
			cluster := []uint32{vf.pid}
			for e := victim.Prev(); e != nil && len(cluster) < p.evictionBatch; e = e.Prev() {
				if f := e.Value.(*frame); f.dirty {
					cluster = append(cluster, f.pid)
				}
			}
			if err := p.writeBack(cluster); err != nil {
				return nil, fmt.Errorf("buffer: evicting pid %d: %w", vf.pid, err)
			}
		}
		p.evictions++
		p.dropFrame(vf)
	}
	f := &frame{pid: pid, data: make([]byte, p.pageSize)}
	f.elem = p.lru.PushFront(f)
	p.frames[pid] = f
	return f, nil
}

func (p *Pool) dropFrame(f *frame) {
	p.lru.Remove(f.elem)
	delete(p.frames, f.pid)
}
