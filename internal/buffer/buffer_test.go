package buffer

import (
	"bytes"
	"math/rand"
	"testing"

	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftltest"
	"pdl/internal/opu"
)

func newPool(t *testing.T, capacity, numPages int) (*Pool, *flash.Chip) {
	t.Helper()
	chip := flash.NewChip(ftltest.SmallParams(16))
	m, err := core.New(chip, numPages, core.Options{ReserveBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p, chip
}

func TestNewPoolValidation(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(4))
	m, err := opu.New(chip, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPool(m, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestGetNewAndReadBack(t *testing.T) {
	p, _ := newPool(t, 4, 16)
	data, err := p.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte("hello buffer"))
	if err := p.MarkDirty(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello buffer")) {
		t.Error("content lost")
	}
}

func TestHitAvoidsFlashIO(t *testing.T) {
	p, chip := newPool(t, 4, 16)
	d, err := p.GetNew(1)
	if err != nil {
		t.Fatal(err)
	}
	d[0] = 7
	_ = p.MarkDirty(1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	before := chip.Stats()
	for i := 0; i < 10; i++ {
		if _, err := p.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	if diff := chip.Stats().Sub(before); diff.Ops() != 0 {
		t.Errorf("10 hits cost %+v flash ops, want 0", diff)
	}
	st := p.Stats()
	if st.Hits < 10 {
		t.Errorf("hits = %d, want >= 10", st.Hits)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p, chip := newPool(t, 2, 16)
	for pid := uint32(0); pid < 2; pid++ {
		d, err := p.GetNew(pid)
		if err != nil {
			t.Fatal(err)
		}
		d[0] = byte(pid + 1)
		_ = p.MarkDirty(pid)
	}
	before := chip.Stats()
	// Faulting a third page evicts the LRU (pid 0), which is dirty.
	if _, err := p.GetNew(2); err != nil {
		t.Fatal(err)
	}
	if chip.Stats().Sub(before).Ops() == 0 {
		t.Error("dirty eviction caused no flash I/O")
	}
	if p.Stats().Evictions != 1 || p.Stats().Writebacks != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", p.Len())
	}
	// Evicted page still reads back with its data.
	got, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("evicted page content lost")
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	p, _ := newPool(t, 2, 16)
	// Create two pages, flush so they're clean.
	for pid := uint32(0); pid < 2; pid++ {
		if _, err := p.GetNew(pid); err != nil {
			t.Fatal(err)
		}
		_ = p.MarkDirty(pid)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	wb := p.Stats().Writebacks
	if _, err := p.GetNew(3); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Writebacks != wb {
		t.Error("clean eviction triggered a writeback")
	}
}

func TestLRUOrder(t *testing.T) {
	p, _ := newPool(t, 2, 16)
	for pid := uint32(0); pid < 2; pid++ {
		if _, err := p.GetNew(pid); err != nil {
			t.Fatal(err)
		}
		_ = p.MarkDirty(pid)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Touch 0 so 1 becomes LRU.
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.GetNew(2); err != nil {
		t.Fatal(err)
	}
	// 0 must still be resident (hit without miss increment).
	misses := p.Stats().Misses
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Misses != misses {
		t.Error("recently used page was evicted instead of LRU")
	}
}

func TestMarkDirtyNonResident(t *testing.T) {
	p, _ := newPool(t, 2, 16)
	if err := p.MarkDirty(5); err == nil {
		t.Error("MarkDirty of non-resident page succeeded")
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	p, _ := newPool(t, 2, 16)
	d, err := p.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	d[0] = 9
	_ = p.MarkDirty(0)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(0); err != ErrClosed {
		t.Errorf("Get after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRandomWorkloadMatchesShadow(t *testing.T) {
	const numPages = 32
	p, _ := newPool(t, 5, numPages)
	size := p.PageSize()
	shadow := make([][]byte, numPages)
	for pid := 0; pid < numPages; pid++ {
		shadow[pid] = make([]byte, size)
		d, err := p.GetNew(uint32(pid))
		if err != nil {
			t.Fatal(err)
		}
		copy(d, shadow[pid])
		_ = p.MarkDirty(uint32(pid))
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 800; i++ {
		pid := uint32(rng.Intn(numPages))
		d, err := p.Get(pid)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !bytes.Equal(d, shadow[pid]) {
			t.Fatalf("op %d: pid %d diverged", i, pid)
		}
		off := rng.Intn(size - 4)
		rng.Read(d[off : off+4])
		copy(shadow[pid], d)
		_ = p.MarkDirty(pid)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < numPages; pid++ {
		d, err := p.Get(uint32(pid))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d, shadow[pid]) {
			t.Fatalf("pid %d final mismatch", pid)
		}
	}
}
