package buffer

import (
	"errors"
	"testing"

	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ftltest"
	"pdl/internal/opu"
)

func TestGetFaultsMissingPage(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Get of a never-written page surfaces the method's error and leaves
	// no frame behind.
	if _, err := p.Get(3); !errors.Is(err, ftl.ErrNotWritten) {
		t.Errorf("Get unwritten: %v", err)
	}
	if p.Len() != 0 {
		t.Errorf("failed fault left %d frames resident", p.Len())
	}
}

func TestGetNewOnResidentPageHits(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	d[0] = 0xAA
	// GetNew of a resident page must return the existing frame, not zero
	// it.
	d2, err := p.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0] != 0xAA {
		t.Error("GetNew zeroed a resident frame")
	}
	if p.Stats().Hits == 0 {
		t.Error("resident GetNew not counted as hit")
	}
}

func TestAccessorMethods(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 7 {
		t.Errorf("Capacity = %d", p.Capacity())
	}
	if p.PageSize() != chip.Params().DataSize {
		t.Errorf("PageSize = %d", p.PageSize())
	}
	if p.Method() != ftl.Method(m) {
		t.Error("Method() did not return the underlying method")
	}
}

func TestFlushAfterCloseFails(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after close: %v", err)
	}
	if _, err := p.GetNew(0); !errors.Is(err, ErrClosed) {
		t.Errorf("GetNew after close: %v", err)
	}
}
