package buffer

import (
	"errors"
	"testing"

	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ftltest"
	"pdl/internal/opu"
)

func TestGetFaultsMissingPage(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Get of a never-written page surfaces the method's error and leaves
	// no frame behind.
	if _, err := p.Get(3); !errors.Is(err, ftl.ErrNotWritten) {
		t.Errorf("Get unwritten: %v", err)
	}
	if p.Len() != 0 {
		t.Errorf("failed fault left %d frames resident", p.Len())
	}
}

func TestGetNewOnResidentPageHits(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	d[0] = 0xAA
	// GetNew of a resident page must return the existing frame, not zero
	// it.
	d2, err := p.GetNew(0)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0] != 0xAA {
		t.Error("GetNew zeroed a resident frame")
	}
	if p.Stats().Hits == 0 {
		t.Error("resident GetNew not counted as hit")
	}
}

func TestAccessorMethods(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 7 {
		t.Errorf("Capacity = %d", p.Capacity())
	}
	if p.PageSize() != chip.Params().DataSize {
		t.Errorf("PageSize = %d", p.PageSize())
	}
	if p.Method() != ftl.Method(m) {
		t.Error("Method() did not return the underlying method")
	}
}

func TestFlushAfterCloseFails(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after close: %v", err)
	}
	if _, err := p.GetNew(0); !errors.Is(err, ErrClosed) {
		t.Errorf("GetNew after close: %v", err)
	}
}

// recordingMethod wraps a method and records the pid order of per-page
// write-backs. It deliberately does NOT implement ftl.BatchWriter, forcing
// the pool onto its per-page fallback path.
type recordingMethod struct {
	ftl.Method
	writes []uint32
}

func (r *recordingMethod) WritePage(pid uint32, data []byte) error {
	r.writes = append(r.writes, pid)
	return r.Method.WritePage(pid, data)
}

// recordingBatchMethod additionally exposes the inner method's WriteBatch,
// recording each batch's pid order.
type recordingBatchMethod struct {
	*recordingMethod
	batches [][]uint32
}

func (r *recordingBatchMethod) WriteBatch(writes []ftl.PageWrite) error {
	pids := make([]uint32, len(writes))
	for i, w := range writes {
		pids[i] = w.PID
	}
	r.batches = append(r.batches, pids)
	return r.Method.(ftl.BatchWriter).WriteBatch(writes)
}

func ascending(pids []uint32) bool {
	for i := 1; i < len(pids); i++ {
		if pids[i] <= pids[i-1] {
			return false
		}
	}
	return true
}

func dirtyPages(t *testing.T, p *Pool, pids ...uint32) {
	t.Helper()
	for _, pid := range pids {
		d, err := p.GetNew(pid)
		if err != nil {
			t.Fatal(err)
		}
		d[0] = byte(pid + 1)
		if err := p.MarkDirty(pid); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlushWritesBackInPidOrder(t *testing.T) {
	// The frame map iterates in random order; Flush must still hit the
	// method in ascending pid order so device write patterns reproduce.
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingMethod{Method: m}
	p, err := NewPool(rec, 16)
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, p, 9, 3, 27, 0, 14, 5)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 6 || !ascending(rec.writes) {
		t.Errorf("write-back order %v, want 6 ascending pids", rec.writes)
	}
}

func TestFlushBatchesThroughBatchWriter(t *testing.T) {
	// Over a batch-capable method, Flush issues one pid-ordered WriteBatch
	// instead of per-page writes.
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := core.New(chip, 32, core.Options{ReserveBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBatchMethod{recordingMethod: &recordingMethod{Method: m}}
	p, err := NewPool(rec, 16)
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, p, 7, 2, 11, 30, 0)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 0 {
		t.Errorf("per-page writes %v leaked past the batch path", rec.writes)
	}
	if len(rec.batches) != 1 || len(rec.batches[0]) != 5 || !ascending(rec.batches[0]) {
		t.Errorf("batches = %v, want one ascending batch of 5", rec.batches)
	}
	if wb := p.Stats().Writebacks; wb != 5 {
		t.Errorf("writebacks = %d, want 5", wb)
	}
}

func TestEvictionClustersColdDirtyFrames(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingMethod{Method: m}
	p, err := NewPoolOpts(rec, 4, Options{EvictionBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, p, 10, 11, 12, 13) // LRU order: 10 coldest
	// Faulting a fifth page evicts pid 10 and clusters the two next-coldest
	// dirty frames (11, 12) into the same pid-ordered write-back.
	if _, err := p.GetNew(20); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (clustering must not evict extra frames)", st.Evictions)
	}
	if st.Writebacks != 3 || !ascending(rec.writes) || len(rec.writes) != 3 {
		t.Errorf("writebacks = %d, writes = %v; want 3 ascending", st.Writebacks, rec.writes)
	}
	if p.Len() != 4 {
		t.Errorf("Len = %d, want capacity 4", p.Len())
	}
	// The clustered frames are clean now: the next two evictions are free.
	rec.writes = nil
	if _, err := p.GetNew(21); err != nil {
		t.Fatal(err)
	}
	if _, err := p.GetNew(22); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 0 {
		t.Errorf("clean evictions wrote back %v", rec.writes)
	}
	// Pid 13 is still dirty and still resident; a flush picks it up along
	// with the freshly created (dirty) pages, in pid order.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 4 || rec.writes[0] != 13 || !ascending(rec.writes) {
		t.Errorf("final flush wrote %v, want [13 20 21 22]", rec.writes)
	}
}
