package buffer

// Tests for the batched fault path: GetMany must behave exactly like a
// loop of Get calls (contents, hit/miss accounting, eviction safety) while
// collapsing its misses into one method ReadBatch when available, and
// Readahead must prefetch without promoting or changing results.

import (
	"bytes"
	"testing"

	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ftltest"
)

// countingMethod wraps a method and counts the read calls reaching it.
type countingMethod struct {
	ftl.Method
	readPages  int
	readBatch  int
	batchPages int
}

func (c *countingMethod) ReadPage(pid uint32, buf []byte) error {
	c.readPages++
	return c.Method.ReadPage(pid, buf)
}

func (c *countingMethod) ReadBatch(pids []uint32, bufs [][]byte) error {
	br, ok := c.Method.(ftl.BatchReader)
	if !ok {
		panic("countingMethod.ReadBatch on non-batch method")
	}
	c.readBatch++
	c.batchPages += len(pids)
	return br.ReadBatch(pids, bufs)
}

// serialOnly hides the batch interfaces of a method, forcing fallbacks,
// while counting the per-page reads that reach it.
type serialOnly struct {
	ftl.Method
	readPages int
}

func (c *serialOnly) ReadPage(pid uint32, buf []byte) error {
	c.readPages++
	return c.Method.ReadPage(pid, buf)
}

func newStore(t *testing.T, numPages int) (*core.Store, [][]byte) {
	t.Helper()
	chip := flash.NewChip(ftltest.SmallParams(16))
	s, err := core.New(chip, numPages, core.Options{MaxDifferentialSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	shadow := make([][]byte, numPages)
	for pid := 0; pid < numPages; pid++ {
		shadow[pid] = make([]byte, size)
		for i := range shadow[pid] {
			shadow[pid][i] = byte(pid) ^ byte(i)
		}
		if err := s.WritePage(uint32(pid), shadow[pid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s, shadow
}

func TestGetManyBatchesMisses(t *testing.T) {
	s, shadow := newStore(t, 32)
	cm := &countingMethod{Method: s}
	p, err := NewPool(cm, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Warm two pages; then a GetMany mixing hits, misses, and a duplicate.
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(2); err != nil {
		t.Fatal(err)
	}
	cm.readPages, cm.readBatch, cm.batchPages = 0, 0, 0
	pids := []uint32{1, 5, 2, 6, 7, 5}
	out, err := p.GetMany(pids)
	if err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		if !bytes.Equal(out[i], shadow[pid]) {
			t.Fatalf("element %d (pid %d): wrong content", i, pid)
		}
	}
	if cm.readPages != 0 {
		t.Errorf("GetMany used %d per-page reads, want 0", cm.readPages)
	}
	if cm.readBatch != 1 || cm.batchPages != 3 {
		t.Errorf("GetMany issued %d batches over %d pages, want 1 over 3 (pids 5,6,7)", cm.readBatch, cm.batchPages)
	}
	st := p.Stats()
	// The two warming Gets were misses; GetMany adds 2 hits (1, 2) and 3
	// misses (5, 6, 7) — the duplicate 5 aliases an in-flight miss and is
	// neither.
	if st.Hits != 2 || st.Misses != 5 {
		t.Errorf("stats hits=%d misses=%d, want 2/5 (duplicate of an in-flight miss counts as neither)", st.Hits, st.Misses)
	}

	// Oversized requests are rejected before touching the pool.
	if _, err := p.GetMany(make([]uint32, 17)); err == nil {
		t.Error("GetMany beyond capacity accepted")
	}
}

func TestGetManyFallsBackPerPage(t *testing.T) {
	s, shadow := newStore(t, 16)
	cm := &serialOnly{Method: s}
	p, err := NewPool(cm, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.GetMany([]uint32{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, pid := range []uint32{3, 4, 5} {
		if !bytes.Equal(out[i], shadow[pid]) {
			t.Fatalf("pid %d: wrong content", pid)
		}
	}
	if cm.readPages != 3 {
		t.Errorf("fallback used %d per-page reads, want 3", cm.readPages)
	}
}

func TestGetManyErrorLeavesNoGarbageResident(t *testing.T) {
	s, _ := newStore(t, 8)
	p, err := NewPool(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	// pid 20 is out of range: the whole call fails and none of the batch's
	// pages may stay resident (their frames were never filled).
	if _, err := p.GetMany([]uint32{1, 20}); err == nil {
		t.Fatal("GetMany with invalid pid succeeded")
	}
	if p.Len() != 0 {
		t.Errorf("%d frames resident after failed GetMany, want 0", p.Len())
	}
	// The pool still works.
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
}

func TestReadaheadPrefetchesWithoutPromoting(t *testing.T) {
	s, shadow := newStore(t, 32)
	cm := &countingMethod{Method: s}
	p, err := NewPoolOpts(cm, 8, Options{Readahead: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.ReadaheadWindow() != 4 {
		t.Fatalf("ReadaheadWindow = %d, want 4", p.ReadaheadWindow())
	}
	n, err := p.Readahead([]uint32{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Readahead faulted %d pages, want 3", n)
	}
	if cm.readBatch != 1 || cm.batchPages != 3 {
		t.Errorf("Readahead issued %d batches over %d pages, want 1 over 3", cm.readBatch, cm.batchPages)
	}
	st := p.Stats()
	if st.Readaheads != 3 || st.Misses != 0 {
		t.Errorf("stats readaheads=%d misses=%d, want 3/0", st.Readaheads, st.Misses)
	}
	// The prefetched pages are now hits, with correct content.
	cm.readBatch, cm.batchPages = 0, 0
	buf, err := p.Get(11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, shadow[11]) {
		t.Fatal("prefetched page has wrong content")
	}
	if got := p.Stats(); got.Hits != 1 || got.Misses != 0 {
		t.Errorf("post-prefetch Get: hits=%d misses=%d, want 1/0", got.Hits, got.Misses)
	}
	// Re-readahead of resident pages faults nothing but reports them
	// covered, so window-advancing callers skip them.
	if n, err := p.Readahead([]uint32{10, 11, 12}); err != nil || n != 3 {
		t.Errorf("repeat Readahead = (%d, %v), want (3, nil)", n, err)
	}
	if st := p.Stats(); st.Readaheads != 3 {
		t.Errorf("readaheads=%d after resident repeat, want still 3 (nothing faulted)", st.Readaheads)
	}
	// The capacity/2 cap bounds one speculation and is reported honestly:
	// only the covered prefix is claimed.
	if n, err := p.Readahead([]uint32{20, 21, 22, 23, 24, 25}); err != nil || n != 4 {
		t.Errorf("capped Readahead = (%d, %v), want (4, nil) on a capacity-8 pool", n, err)
	}
}
