package workload

import (
	"testing"

	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ftltest"
	"pdl/internal/ipl"
	"pdl/internal/ipu"
	"pdl/internal/opu"
)

func testConfig(numPages int) Config {
	return Config{
		NumPages:          numPages,
		PctChanged:        2,
		NUpdatesTillWrite: 1,
		PctUpdateOps:      50,
		Seed:              42,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(10)
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{NumPages: 0, PctChanged: 2, NUpdatesTillWrite: 1},
		{NumPages: 10, PctChanged: 0, NUpdatesTillWrite: 1},
		{NumPages: 10, PctChanged: 101, NUpdatesTillWrite: 1},
		{NumPages: 10, PctChanged: 2, NUpdatesTillWrite: 0},
		{NumPages: 10, PctChanged: 2, NUpdatesTillWrite: 1, PctUpdateOps: 101},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func methods(t *testing.T, numBlocks, numPages int) []ftl.Method {
	t.Helper()
	var out []ftl.Method
	{
		chip := flash.NewChip(ftltest.SmallParams(numBlocks))
		m, err := core.New(chip, numPages, core.Options{MaxDifferentialSize: 64, ReserveBlocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	{
		chip := flash.NewChip(ftltest.SmallParams(numBlocks))
		m, err := opu.New(chip, numPages, 2)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	{
		chip := flash.NewChip(ftltest.SmallParams(numBlocks))
		m, err := ipu.New(chip, numPages)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	{
		chip := flash.NewChip(ftltest.SmallParams(numBlocks))
		m, err := ipl.New(chip, numPages, ipl.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func TestRunUpdateOpsAllMethods(t *testing.T) {
	for _, m := range methods(t, 16, 48) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			d, err := NewDriver(m, testConfig(48))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.RunUpdateOps(10); err == nil {
				t.Fatal("RunUpdateOps before Load succeeded")
			}
			if err := d.Load(); err != nil {
				t.Fatal(err)
			}
			tot, err := d.RunUpdateOps(200)
			if err != nil {
				t.Fatal(err)
			}
			if tot.Ops < 200 {
				t.Errorf("Ops = %d, want >= 200", tot.Ops)
			}
			if tot.UpdateOps != tot.Ops {
				t.Errorf("UpdateOps = %d != Ops = %d for pure update run", tot.UpdateOps, tot.Ops)
			}
			if tot.ReadPhase.Reads == 0 {
				t.Error("no reads in read phase")
			}
			if tot.MicrosPerOp() <= 0 {
				t.Error("MicrosPerOp = 0")
			}
		})
	}
}

func TestRunMixedOps(t *testing.T) {
	for _, m := range methods(t, 16, 48) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			cfg := testConfig(48)
			cfg.PctUpdateOps = 30
			d, err := NewDriver(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Load(); err != nil {
				t.Fatal(err)
			}
			tot, err := d.RunMixedOps(400)
			if err != nil {
				t.Fatal(err)
			}
			frac := float64(tot.UpdateOps) / float64(tot.Ops) * 100
			if frac < 15 || frac > 45 {
				t.Errorf("update fraction = %.1f%%, want ~30%%", frac)
			}
		})
	}
}

func TestReadOnlyMixCostsOneReadPerOpForOPU(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(16))
	m, err := opu.New(chip, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(32)
	cfg.PctUpdateOps = 0
	d, err := NewDriver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	tot, err := d.RunMixedOps(100)
	if err != nil {
		t.Fatal(err)
	}
	if tot.UpdateOps != 0 {
		t.Errorf("UpdateOps = %d in read-only mix", tot.UpdateOps)
	}
	if tot.ReadPhase.Reads != tot.Ops {
		t.Errorf("reads = %d for %d read-only ops", tot.ReadPhase.Reads, tot.Ops)
	}
	if tot.WritePhase.Ops() != 0 {
		t.Errorf("write phase ops = %d in read-only mix", tot.WritePhase.Ops())
	}
}

func TestNUpdatesTillWriteGroupsCycles(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(16))
	m, err := opu.New(chip, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(32)
	cfg.NUpdatesTillWrite = 5
	d, err := NewDriver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	tot, err := d.RunUpdateOps(4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 update operations, each a cycle of 5 in-memory changes: OPU reads
	// 4 pages and writes 4 pages (2 write ops each, incl. obsolete mark);
	// the per-operation cost is flat in N (Figure 13).
	if tot.Ops != 4 {
		t.Errorf("Ops = %d, want 4", tot.Ops)
	}
	if tot.ReadPhase.Reads != 4 {
		t.Errorf("reads = %d, want 4 cycles", tot.ReadPhase.Reads)
	}
	if tot.WritePhase.Writes != 8 {
		t.Errorf("writes = %d, want 8 (4 cycles x 2)", tot.WritePhase.Writes)
	}
}

func TestZipfSkew(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(16))
	m, err := opu.New(chip, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(64)
	cfg.ZipfS = 1.5
	d, err := NewDriver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint32]int{}
	for i := 0; i < 5000; i++ {
		counts[d.pickPage()]++
	}
	if counts[0] < 1000 {
		t.Errorf("zipf: page 0 hit %d of 5000, want heavy skew", counts[0])
	}
}

func TestConditionReachesSteadyState(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(10))
	numPages := 10 * chip.Params().PagesPerBlock / 2
	m, err := core.New(chip, numPages, core.Options{MaxDifferentialSize: 64, ReserveBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(m, testConfig(numPages))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	ops, err := d.Condition(1.0, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if ops == 0 {
		t.Error("conditioning did nothing")
	}
	if d.meanGCRounds() < 1.0 {
		t.Errorf("meanGCRounds = %.2f after conditioning", d.meanGCRounds())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() Totals {
		chip := flash.NewChip(ftltest.SmallParams(16))
		m, err := opu.New(chip, 32, 2)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDriver(m, testConfig(32))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Load(); err != nil {
			t.Fatal(err)
		}
		tot, err := d.RunUpdateOps(100)
		if err != nil {
			t.Fatal(err)
		}
		return tot
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}
