package workload

import (
	"bytes"
	"testing"

	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ipl"
	"pdl/internal/opu"
)

func smallParams(numBlocks int) flash.Params {
	p := flash.DefaultParams()
	p.NumBlocks = numBlocks
	p.PagesPerBlock = 16
	p.DataSize = 512
	p.SpareSize = 32
	return p
}

func parallelConfig(numPages int) Config {
	return Config{
		NumPages:          numPages,
		PctChanged:        2,
		NUpdatesTillWrite: 1,
		Seed:              1,
	}
}

// TestParallelUpdateOpsPDL drives a sharded PDL store with several workers
// and verifies the run completes, counts ops, and leaves a readable
// database.
func TestParallelUpdateOpsPDL(t *testing.T) {
	chip := flash.NewChip(smallParams(24))
	s, err := core.New(chip, 96, core.Options{MaxDifferentialSize: 128, ReserveBlocks: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(s, parallelConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	res, err := d.RunParallelUpdateOps(4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Workers != 4 {
		t.Errorf("result = %+v, want 500 ops on 4 workers", res)
	}
	if res.Serialized {
		t.Error("PDL store ran serialized; it advertises concurrency safety")
	}
	if res.Flash.Reads == 0 {
		t.Error("no simulated flash reads recorded")
	}
	// The database must still be fully readable after the parallel churn.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chip.Params().DataSize)
	for pid := 0; pid < 96; pid++ {
		if err := s.ReadPage(uint32(pid), buf); err != nil {
			t.Fatalf("pid %d unreadable after parallel run: %v", pid, err)
		}
	}
}

// TestParallelMatchesSequentialContent partitions pids by worker, so a
// single-worker parallel run over the same seed must produce exactly the
// same final page contents as another single-worker run (determinism), and
// a multi-worker run must keep every page internally consistent with the
// single writer that owns it.
func TestParallelMatchesSequentialContent(t *testing.T) {
	build := func() (*core.Store, *Driver) {
		chip := flash.NewChip(smallParams(16))
		s, err := core.New(chip, 32, core.Options{MaxDifferentialSize: 128, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDriver(s, parallelConfig(32))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Load(); err != nil {
			t.Fatal(err)
		}
		return s, d
	}
	s1, d1 := build()
	s2, d2 := build()
	if _, err := d1.RunParallelUpdateOps(1, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.RunParallelUpdateOps(1, 300); err != nil {
		t.Fatal(err)
	}
	b1 := make([]byte, 512)
	b2 := make([]byte, 512)
	for pid := 0; pid < 32; pid++ {
		if err := s1.ReadPage(uint32(pid), b1); err != nil {
			t.Fatal(err)
		}
		if err := s2.ReadPage(uint32(pid), b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("single-worker parallel runs diverged on pid %d", pid)
		}
	}
}

// TestParallelSerializesBaselines checks that the non-concurrency-safe
// baselines run behind the mutex (and do not crash or corrupt state).
func TestParallelSerializesBaselines(t *testing.T) {
	builders := map[string]func(chip *flash.Chip, numPages int) (ftl.Method, error){
		"OPU": func(chip *flash.Chip, numPages int) (ftl.Method, error) {
			return opu.New(chip, numPages, 2)
		},
		"IPL": func(chip *flash.Chip, numPages int) (ftl.Method, error) {
			return ipl.New(chip, numPages, ipl.Options{LogPagesPerBlock: 4})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			chip := flash.NewChip(smallParams(24))
			m, err := build(chip, 64)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDriver(m, parallelConfig(64))
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Load(); err != nil {
				t.Fatal(err)
			}
			res, err := d.RunParallelUpdateOps(4, 200)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Serialized {
				t.Errorf("%s reported as concurrency-safe; it is not", name)
			}
			buf := make([]byte, chip.Params().DataSize)
			for pid := 0; pid < 64; pid++ {
				if err := m.ReadPage(uint32(pid), buf); err != nil {
					t.Fatalf("pid %d unreadable: %v", pid, err)
				}
			}
		})
	}
}

// TestParallelValidation pins down the argument contract.
func TestParallelValidation(t *testing.T) {
	chip := flash.NewChip(smallParams(16))
	s, err := core.New(chip, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(s, parallelConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunParallelUpdateOps(1, 10); err == nil {
		t.Error("unloaded database accepted")
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunParallelUpdateOps(0, 10); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := d.RunParallelUpdateOps(9, 10); err == nil {
		t.Error("more workers than pages accepted")
	}
}
