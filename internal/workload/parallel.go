package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pdl/internal/flash"
)

// concurrencySafe marks a method safe for concurrent use. The PDL store
// advertises safety through this deliberately explicit marker method (an
// incidental accessor cannot match it by accident); the page-based and
// log-based baselines do not implement it, and are serialized behind a
// mutex so the parallel driver can still compare against them honestly.
type concurrencySafe interface {
	ConcurrencySafe() bool
}

// ParallelResult reports a parallel workload run. Simulated flash cost is
// aggregate only: with operations in flight on several goroutines, the
// paper's read-phase/write-phase split of a single operation is no longer
// observable from the shared chip counters.
type ParallelResult struct {
	// Ops is the number of update operations executed across all workers.
	Ops int64
	// Workers is the number of worker goroutines used.
	Workers int
	// Elapsed is the host wall-clock time of the run, the throughput
	// metric. (The simulated flash cost below is scheduling-dependent
	// when workers > 1: goroutine interleaving decides when shard
	// buffers fill, flush, and trigger garbage collection.)
	Elapsed time.Duration
	// Flash is the aggregate simulated flash cost of the run.
	Flash flash.Stats
	// Serialized reports that the method was not concurrency-safe and ran
	// behind a global mutex.
	Serialized bool
}

// OpsPerSecond returns host-side update operations per wall-clock second.
func (r ParallelResult) OpsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunParallelUpdateOps executes numOps update operations (full
// read-change-write reflection cycles, as in RunUpdateOps) spread over
// workers goroutines. The pid space is partitioned by worker (worker w owns
// pids with pid % workers == w), so every page has exactly one writer and
// per-page content stays well defined; each worker draws from its own
// deterministic rng seeded with Config.Seed and its worker index.
//
// Methods that advertise concurrency safety (the PDL store's sharded
// write-buffer layer) run fully in parallel; other methods are transparently
// serialized behind a mutex, which is the honest baseline comparison: a
// single-threaded flash driver serves one request at a time.
func (d *Driver) RunParallelUpdateOps(workers, numOps int) (ParallelResult, error) {
	if !d.loaded {
		return ParallelResult{}, fmt.Errorf("workload: database not loaded")
	}
	if workers < 1 {
		return ParallelResult{}, fmt.Errorf("workload: workers must be >= 1, got %d", workers)
	}
	if workers > d.cfg.NumPages {
		return ParallelResult{}, fmt.Errorf("workload: %d workers exceed %d pages (no pids to partition)",
			workers, d.cfg.NumPages)
	}
	var opMu *sync.Mutex
	safe := false
	if m, ok := d.method.(concurrencySafe); ok && m.ConcurrencySafe() {
		safe = true
	} else {
		opMu = &sync.Mutex{}
	}

	before := d.method.Stats()
	start := time.Now()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		share := numOps / workers
		if w < numOps%workers {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			if err := d.workerLoop(w, workers, share, opMu); err != nil {
				errCh <- fmt.Errorf("workload: worker %d: %w", w, err)
			}
		}(w, share)
	}
	wg.Wait()
	close(errCh)
	elapsed := time.Since(start)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	if err := errors.Join(errs...); err != nil {
		return ParallelResult{}, err
	}
	return ParallelResult{
		Ops:        int64(numOps),
		Workers:    workers,
		Elapsed:    elapsed,
		Flash:      d.method.Stats().Sub(before),
		Serialized: !safe,
	}, nil
}

// workerLoop runs one worker's share of update cycles over its pid
// partition. When opMu is non-nil every method call is serialized.
func (d *Driver) workerLoop(w, workers, ops int, opMu *sync.Mutex) error {
	rng := rand.New(rand.NewSource(d.cfg.Seed + int64(w)*0x9E37))
	size := d.method.PageSize()
	page := make([]byte, size)
	partition := d.cfg.NumPages / workers
	if w < d.cfg.NumPages%workers {
		partition++
	}
	var zipf *rand.Zipf
	if d.cfg.ZipfS > 1 && partition > 1 {
		zipf = rand.NewZipf(rng, d.cfg.ZipfS, 1, uint64(partition-1))
	}
	for i := 0; i < ops; i++ {
		var slot int
		if zipf != nil {
			slot = int(zipf.Uint64())
		} else {
			slot = rng.Intn(partition)
		}
		pid := uint32(slot*workers + w)

		if err := d.readPage(pid, page, opMu); err != nil {
			return err
		}
		for u := 0; u < d.cfg.NUpdatesTillWrite; u++ {
			off, length := d.cfg.mutateInto(rng, page)
			if d.logger != nil {
				if err := d.logUpdate(pid, off, page[off:off+length], opMu); err != nil {
					return err
				}
			}
		}
		if err := d.writePage(pid, page, opMu); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) readPage(pid uint32, page []byte, opMu *sync.Mutex) error {
	if opMu != nil {
		opMu.Lock()
		defer opMu.Unlock()
	}
	return d.method.ReadPage(pid, page)
}

func (d *Driver) writePage(pid uint32, page []byte, opMu *sync.Mutex) error {
	if opMu != nil {
		opMu.Lock()
		defer opMu.Unlock()
	}
	if d.logger != nil {
		return d.logger.Evict(pid)
	}
	return d.method.WritePage(pid, page)
}

func (d *Driver) logUpdate(pid uint32, off int, data []byte, opMu *sync.Mutex) error {
	if opMu != nil {
		opMu.Lock()
		defer opMu.Unlock()
	}
	return d.logger.LogUpdate(pid, off, data)
}
