package workload

import (
	"testing"

	"pdl/internal/flash"
	"pdl/internal/ftltest"
	"pdl/internal/ipl"
	"pdl/internal/opu"
)

func TestTotalsHelpers(t *testing.T) {
	var z Totals
	if z.MicrosPerOp() != 0 || z.ErasesPerOp() != 0 {
		t.Error("zero totals should report zero rates")
	}
	tt := Totals{
		Ops:        10,
		ReadPhase:  flash.Stats{Reads: 10, TimeMicros: 1100},
		WritePhase: flash.Stats{Writes: 5, Erases: 2, TimeMicros: 8050},
	}
	if got := tt.MicrosPerOp(); got != 915 {
		t.Errorf("MicrosPerOp = %g, want 915", got)
	}
	if got := tt.ErasesPerOp(); got != 0.2 {
		t.Errorf("ErasesPerOp = %g, want 0.2", got)
	}
	o := tt.Overall()
	if o.Reads != 10 || o.Writes != 5 || o.Erases != 2 {
		t.Errorf("Overall = %+v", o)
	}
}

func TestMutateRespectsPctChanged(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range []float64{0.1, 2, 50, 100} {
		cfg := testConfig(16)
		cfg.PctChanged = pct
		d, err := NewDriver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(chip.Params().DataSize) * pct / 100)
		if want < 1 {
			want = 1
		}
		_, length := d.mutate()
		if length != want {
			t.Errorf("pct %g: changed %d bytes, want %d", pct, length, want)
		}
	}
}

func TestConditionMaxOpsBound(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(64)) // big flash: GC never triggers
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(m, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	ops, err := d.Condition(100, 1024) // unreachable target, small budget
	if err != nil {
		t.Fatal(err)
	}
	if ops > 1024+512 {
		t.Errorf("conditioning ran %d ops beyond the %d budget", ops, 1024)
	}
}

func TestIPLDriverUsesLogUpdates(t *testing.T) {
	// When driving IPL, the reading step must not pay for the write step:
	// the driver goes through LogUpdate/Evict, so a light update costs one
	// log-sector write and zero extra reads.
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := ipl.New(chip, 16, ipl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(m, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	tot, err := d.RunUpdateOps(20)
	if err != nil {
		t.Fatal(err)
	}
	if tot.WritePhase.Reads != 0 {
		t.Errorf("IPL write phase performed %d reads; the tightly-coupled path should not read",
			tot.WritePhase.Reads)
	}
	if tot.WritePhase.Writes == 0 {
		t.Error("IPL write phase performed no writes")
	}
}

func TestMixedOpsZeroAndFull(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(16))
	m, err := opu.New(chip, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(32)
	cfg.PctUpdateOps = 100
	d, err := NewDriver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	tot, err := d.RunMixedOps(50)
	if err != nil {
		t.Fatal(err)
	}
	if tot.UpdateOps != tot.Ops {
		t.Errorf("at 100%% updates, UpdateOps %d != Ops %d", tot.UpdateOps, tot.Ops)
	}
}

func TestRunBeforeLoadFails(t *testing.T) {
	chip := flash.NewChip(ftltest.SmallParams(8))
	m, err := opu.New(chip, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(m, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunMixedOps(5); err == nil {
		t.Error("RunMixedOps before Load succeeded")
	}
	if _, err := d.Condition(1, 100); err == nil {
		t.Error("Condition before Load succeeded")
	}
}
