// Package workload generates the synthetic workloads of the paper's
// evaluation (section 5.1) and drives page-update methods through them.
//
// The unit of work is the update operation: (1) read the addressed page,
// (2) change the data in the page, (3) write the updated page. The paper
// designed the experiments this way "to exclude the buffering effect in
// the DBMS", so read, write, and overall performance are all visible from
// update operations alone. Two knobs shape the workload:
//
//   - %ChangedByOneU_Op: the percentage of a page changed by one update;
//   - N_updates_till_write: how many update operations hit a page in
//     memory between recreating it from flash and reflecting it back.
//
// Mixed workloads add read-only operations controlled by %UpdateOps.
package workload

import (
	"fmt"
	"math/rand"

	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ipl"
)

// Config parameterizes a workload.
type Config struct {
	// NumPages is the database size in logical pages.
	NumPages int
	// PctChanged is %ChangedByOneU_Op: the percentage (0..100] of a page
	// changed by a single update operation. The paper's default is 2.
	PctChanged float64
	// NUpdatesTillWrite is N_updates_till_write: update operations applied
	// in memory per reflection cycle. The paper's default is 1.
	NUpdatesTillWrite int
	// PctUpdateOps is %UpdateOps for mixed workloads: the percentage of
	// operations that are update operations (the rest are read-only).
	PctUpdateOps float64
	// Seed makes runs reproducible.
	Seed int64
	// ZipfS, when > 1, skews page selection with a Zipf distribution of
	// parameter s (an extension beyond the paper's uniformly random
	// selection; 0 or 1 means uniform).
	ZipfS float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumPages <= 0 {
		return fmt.Errorf("workload: NumPages must be positive, got %d", c.NumPages)
	}
	if c.PctChanged <= 0 || c.PctChanged > 100 {
		return fmt.Errorf("workload: PctChanged must be in (0,100], got %g", c.PctChanged)
	}
	if c.NUpdatesTillWrite < 1 {
		return fmt.Errorf("workload: NUpdatesTillWrite must be >= 1, got %d", c.NUpdatesTillWrite)
	}
	if c.PctUpdateOps < 0 || c.PctUpdateOps > 100 {
		return fmt.Errorf("workload: PctUpdateOps must be in [0,100], got %g", c.PctUpdateOps)
	}
	return nil
}

// Totals reports the flash cost of a driven workload, split into the
// reading step and the writing step of the update operations, exactly the
// decomposition of Figure 12. Read operations that a method performs
// inside its write path (PDL reading the base page to compute the
// differential, garbage-collection reads) land in WritePhase, as in the
// paper ("each method includes a certain amount of read cost, which is
// incurred by garbage collection and amortized into the write cost").
//
// The unit of account is the paper's update operation: one full
// read-change-write cycle. When N_updates_till_write > 1, the N in-memory
// changes belong to a single operation — this is what makes OPU's cost
// flat in N (Figure 13) while IPL's grows with the accumulated update
// logs.
type Totals struct {
	// Ops is the number of operations executed (update + read-only).
	Ops int64
	// UpdateOps is the number of update operations within Ops.
	UpdateOps int64
	// ReadPhase is the cost of reading steps (including read-only ops).
	ReadPhase flash.Stats
	// WritePhase is the cost of writing steps.
	WritePhase flash.Stats
}

// Overall returns the combined cost.
func (t Totals) Overall() flash.Stats { return t.ReadPhase.Add(t.WritePhase) }

// MicrosPerOp returns the overall simulated I/O time per operation.
func (t Totals) MicrosPerOp() float64 {
	if t.Ops == 0 {
		return 0
	}
	return float64(t.Overall().TimeMicros) / float64(t.Ops)
}

// ErasesPerOp returns erase operations per operation (Experiment 6).
func (t Totals) ErasesPerOp() float64 {
	if t.Ops == 0 {
		return 0
	}
	return float64(t.Overall().Erases) / float64(t.Ops)
}

// Driver executes workloads against one method instance.
type Driver struct {
	method ftl.Method
	logger *ipl.Store // non-nil when the method accepts update logs
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	page   []byte
	loaded bool
}

// NewDriver builds a driver for method under cfg.
func NewDriver(method ftl.Method, cfg Config) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Driver{
		method: method,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		page:   make([]byte, method.PageSize()),
	}
	if s, ok := method.(*ipl.Store); ok {
		// IPL is tightly coupled: the driver plays the modified storage
		// manager and hands it individual update logs.
		d.logger = s
	}
	if cfg.ZipfS > 1 {
		d.zipf = rand.NewZipf(d.rng, cfg.ZipfS, 1, uint64(cfg.NumPages-1))
	}
	return d, nil
}

// Method returns the driven method.
func (d *Driver) Method() ftl.Method { return d.method }

// Load writes the initial database: every page gets random content. Over
// a batch-capable method the pages are reflected in WriteBatch groups —
// the contents and the resulting flash layout are identical to the serial
// load (same rng sequence, same append-order programs), but a
// write-through backend pays two fsyncs per group instead of two per
// page, which is what makes file-backed experiment setup tolerable.
func (d *Driver) Load() error {
	if bw, ok := d.method.(ftl.BatchWriter); ok {
		// One arena of group page buffers, reused per chunk: WriteBatch
		// only needs the data alive for the duration of the call.
		const group = 128
		arena := make([]byte, group*len(d.page))
		batch := make([]ftl.PageWrite, 0, group)
		for pid := 0; pid < d.cfg.NumPages; pid++ {
			data := arena[len(batch)*len(d.page):][:len(d.page)]
			d.rng.Read(data)
			batch = append(batch, ftl.PageWrite{PID: uint32(pid), Data: data})
			if len(batch) == group || pid == d.cfg.NumPages-1 {
				if err := bw.WriteBatch(batch); err != nil {
					return fmt.Errorf("workload: loading pids %d..%d: %w",
						batch[0].PID, pid, err)
				}
				batch = batch[:0]
			}
		}
	} else {
		for pid := 0; pid < d.cfg.NumPages; pid++ {
			d.rng.Read(d.page)
			if err := d.method.WritePage(uint32(pid), d.page); err != nil {
				return fmt.Errorf("workload: loading pid %d: %w", pid, err)
			}
		}
	}
	if err := d.method.Flush(); err != nil {
		return err
	}
	d.loaded = true
	return nil
}

// pickPage selects the next page to address.
func (d *Driver) pickPage() uint32 {
	if d.zipf != nil {
		return uint32(d.zipf.Uint64())
	}
	return uint32(d.rng.Intn(d.cfg.NumPages))
}

// mutateInto applies one update operation's change to page using rng,
// returning the changed range for methods that consume update logs: one
// contiguous run of %ChangedByOneU_Op of the page at a uniformly random
// offset ("the portion of data to be changed is randomly selected"). It is
// the single mutation rule shared by the sequential and parallel drivers.
func (c Config) mutateInto(rng *rand.Rand, page []byte) (off int, length int) {
	length = int(float64(len(page)) * c.PctChanged / 100.0)
	if length < 1 {
		length = 1
	}
	if length > len(page) {
		length = len(page)
	}
	off = 0
	if length < len(page) {
		off = rng.Intn(len(page) - length + 1)
	}
	rng.Read(page[off : off+length])
	return off, length
}

// mutate applies one update operation's change to the driver's in-memory
// page.
func (d *Driver) mutate() (off int, length int) {
	return d.cfg.mutateInto(d.rng, d.page)
}

// updateCycle performs one reflection cycle: read the page, apply
// NUpdatesTillWrite update operations, write the page back. It returns the
// cost split between the reading and writing steps. The read/log/write
// dispatch is shared with the parallel driver (readPage, logUpdate,
// writePage in parallel.go), called here without serialization.
func (d *Driver) updateCycle() (readCost, writeCost flash.Stats, err error) {
	pid := d.pickPage()

	before := d.method.Stats()
	if err := d.readPage(pid, d.page, nil); err != nil {
		return flash.Stats{}, flash.Stats{}, err
	}
	readCost = d.method.Stats().Sub(before)

	before = d.method.Stats()
	for u := 0; u < d.cfg.NUpdatesTillWrite; u++ {
		off, length := d.mutate()
		if d.logger != nil {
			if err := d.logUpdate(pid, off, d.page[off:off+length], nil); err != nil {
				return flash.Stats{}, flash.Stats{}, err
			}
		}
	}
	if err := d.writePage(pid, d.page, nil); err != nil {
		return flash.Stats{}, flash.Stats{}, err
	}
	writeCost = d.method.Stats().Sub(before)
	return readCost, writeCost, nil
}

// RunUpdateOps executes numOps update operations (in reflection cycles of
// NUpdatesTillWrite) and returns the accumulated cost split.
func (d *Driver) RunUpdateOps(numOps int) (Totals, error) {
	if !d.loaded {
		return Totals{}, fmt.Errorf("workload: database not loaded")
	}
	var t Totals
	for t.Ops < int64(numOps) {
		r, w, err := d.updateCycle()
		if err != nil {
			return t, err
		}
		t.ReadPhase = t.ReadPhase.Add(r)
		t.WritePhase = t.WritePhase.Add(w)
		t.Ops++
		t.UpdateOps++
	}
	return t, nil
}

// RunMixedOps executes numOps operations, of which ~PctUpdateOps% are
// update operations (full reflection cycles) and the rest are read-only
// operations on the same page distribution (Experiment 4).
func (d *Driver) RunMixedOps(numOps int) (Totals, error) {
	if !d.loaded {
		return Totals{}, fmt.Errorf("workload: database not loaded")
	}
	var t Totals
	for t.Ops < int64(numOps) {
		if d.rng.Float64()*100 < d.cfg.PctUpdateOps {
			r, w, err := d.updateCycle()
			if err != nil {
				return t, err
			}
			t.ReadPhase = t.ReadPhase.Add(r)
			t.WritePhase = t.WritePhase.Add(w)
			t.Ops++
			t.UpdateOps++
			continue
		}
		before := d.method.Stats()
		if err := d.method.ReadPage(d.pickPage(), d.page); err != nil {
			return t, err
		}
		t.ReadPhase = t.ReadPhase.Add(d.method.Stats().Sub(before))
		t.Ops++
	}
	return t, nil
}

// Condition runs update operations until garbage collection has cycled
// every block the requested number of times on average, the paper's
// steady-state criterion ("so that garbage collection is invoked for each
// block at least ten times on the average after loading the database").
// maxOps bounds the conditioning effort.
func (d *Driver) Condition(meanGCRounds float64, maxOps int) (int64, error) {
	if !d.loaded {
		return 0, fmt.Errorf("workload: database not loaded")
	}
	var done int64
	const batch = 512
	for done < int64(maxOps) {
		if d.meanGCRounds() >= meanGCRounds {
			break
		}
		if _, err := d.RunUpdateOps(batch); err != nil {
			return done, err
		}
		done += batch
	}
	return done, nil
}

// meanGCRounds estimates how many times the average block has been
// reclaimed.
func (d *Driver) meanGCRounds() float64 {
	numBlocks := float64(d.method.Device().Params().NumBlocks)
	switch m := d.method.(type) {
	case *ipl.Store:
		return float64(m.Merges()) / numBlocks
	case interface{ Allocator() *ftl.Allocator }:
		return m.Allocator().MeanVictimRounds()
	default:
		// Fall back to erase counts: one erase reclaims one block.
		return float64(d.method.Stats().Erases) / numBlocks
	}
}
