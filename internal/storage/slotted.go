// Package storage implements a slotted-page heap file layer over the
// buffer pool, standing in for the storage system (the paper used the
// Odysseus ORDBMS) that sits above the flash driver. Records live in
// slotted pages; a heap file owns a contiguous range of logical pages and
// supports insert, get, update, delete, and scan.
//
// Nothing in this package knows which page-update method lies below — that
// is the paper's DBMS-independence: the storage layer sees ReadPage and
// WritePage and nothing else.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the storage layer.
var (
	// ErrRecordTooLarge reports a record that cannot fit a page.
	ErrRecordTooLarge = errors.New("storage: record too large for a page")
	// ErrNoSpace reports a full heap file.
	ErrNoSpace = errors.New("storage: heap file is full")
	// ErrInvalidRID reports a record id that does not name a live record.
	ErrInvalidRID = errors.New("storage: invalid record id")
)

// Slotted-page layout within the logical page:
//
//	[0:2]  number of slots
//	[2:4]  free-space tail pointer (records grow down from page end)
//	[4:..] slot directory, 4 bytes per slot: offset(2), length(2)
//	....   free space
//	[tail:end] record data
//
// A slot with offset 0xFFFF is dead (deleted record).
const (
	pageHdrSize  = 4
	slotSize     = 4
	deadOffset   = 0xFFFF
	maxSlotCount = 0x7FFF
)

// page wraps a slotted page image for manipulation.
type page struct {
	buf []byte
}

// initPage formats an all-zero frame as an empty slotted page.
func initPage(buf []byte) page {
	p := page{buf}
	p.setSlotCount(0)
	p.setFreeTail(len(buf))
	return p
}

// asPage interprets an existing frame as a slotted page, normalizing a
// zeroed (never formatted) frame.
func asPage(buf []byte) page {
	p := page{buf}
	if p.freeTail() == 0 { // fresh zeroed frame
		p.setFreeTail(len(buf))
	}
	return p
}

func (p page) slotCount() int      { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p page) setSlotCount(n int)  { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }
func (p page) freeTail() int       { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p page) setFreeTail(off int) { binary.LittleEndian.PutUint16(p.buf[2:], uint16(off)) }

func (p page) slot(i int) (off, length int) {
	base := pageHdrSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p page) setSlot(i, off, length int) {
	base := pageHdrSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// freeSpace returns the bytes available between the slot directory and the
// record data region.
func (p page) freeSpace() int {
	return p.freeTail() - (pageHdrSize + p.slotCount()*slotSize)
}

// insert places rec in the page, reusing a dead slot if one exists.
// It returns the slot index, or -1 if the page lacks room.
func (p page) insert(rec []byte) int {
	need := len(rec)
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == deadOffset {
			slot = i
			break
		}
	}
	extra := 0
	if slot == -1 {
		extra = slotSize
		if p.slotCount() >= maxSlotCount {
			return -1
		}
	}
	if p.freeSpace() < need+extra {
		return -1
	}
	tail := p.freeTail() - need
	copy(p.buf[tail:], rec)
	p.setFreeTail(tail)
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlot(slot, tail, need)
	return slot
}

// get returns the record bytes of slot i (aliasing the page buffer).
func (p page) get(i int) ([]byte, error) {
	if i < 0 || i >= p.slotCount() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrInvalidRID, i, p.slotCount())
	}
	off, length := p.slot(i)
	if off == deadOffset {
		return nil, fmt.Errorf("%w: slot %d is dead", ErrInvalidRID, i)
	}
	if off+length > len(p.buf) {
		return nil, fmt.Errorf("%w: slot %d out of bounds", ErrInvalidRID, i)
	}
	return p.buf[off : off+length], nil
}

// update overwrites slot i with rec. Same-size updates happen in place;
// size-changing updates release the old bytes (compacting the page through
// scratch when fragmentation demands it) and re-place the record. It
// reports whether the update succeeded (false = the new size genuinely
// does not fit the page even after compaction).
func (p page) update(i int, rec []byte, scratch []byte) (bool, error) {
	cur, err := p.get(i)
	if err != nil {
		return false, err
	}
	if len(rec) == len(cur) {
		copy(cur, rec)
		return true, nil
	}
	// The old bytes are dead the moment the slot is re-pointed, so they
	// count as available space.
	if p.freeSpace()+len(cur) < len(rec) {
		return false, nil
	}
	p.setSlot(i, deadOffset, 0)
	if p.freeSpace() < len(rec) {
		p.compact(scratch)
	}
	tail := p.freeTail() - len(rec)
	copy(p.buf[tail:], rec)
	p.setFreeTail(tail)
	p.setSlot(i, tail, len(rec))
	return true, nil
}

// del kills slot i.
func (p page) del(i int) error {
	if _, err := p.get(i); err != nil {
		return err
	}
	p.setSlot(i, deadOffset, 0)
	return nil
}

// compact rewrites the record region to squeeze out dead space, preserving
// slot numbers. Used when updates outgrow the free space. scratch must be
// at least as large as the page; the compacted record region is staged
// there first so that source and destination ranges cannot overlap.
func (p page) compact(scratch []byte) {
	tail := len(p.buf)
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off == deadOffset {
			continue
		}
		tail -= length
		copy(scratch[tail:tail+length], p.buf[off:off+length])
		p.setSlot(i, tail, length)
	}
	copy(p.buf[tail:], scratch[tail:])
	p.setFreeTail(tail)
}
