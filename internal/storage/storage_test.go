package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pdl/internal/buffer"
	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftltest"
)

func newHeap(t *testing.T, poolPages int, heapPages uint32) *Heap {
	t.Helper()
	chip := flash.NewChip(ftltest.SmallParams(16))
	m, err := core.New(chip, int(heapPages)+4, core.Options{ReserveBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.NewPool(m, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(pool, 0, heapPages)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSlottedPageBasics(t *testing.T) {
	buf := make([]byte, 512)
	p := initPage(buf)
	if p.slotCount() != 0 || p.freeTail() != 512 {
		t.Fatalf("fresh page: slots=%d tail=%d", p.slotCount(), p.freeTail())
	}
	s0 := p.insert([]byte("alpha"))
	s1 := p.insert([]byte("beta"))
	if s0 != 0 || s1 != 1 {
		t.Fatalf("slots = %d, %d", s0, s1)
	}
	r0, err := p.get(0)
	if err != nil || string(r0) != "alpha" {
		t.Fatalf("get(0) = %q, %v", r0, err)
	}
	if err := p.del(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.get(0); err == nil {
		t.Error("get of dead slot succeeded")
	}
	// Dead slot is reused.
	s2 := p.insert([]byte("gamma"))
	if s2 != 0 {
		t.Errorf("reused slot = %d, want 0", s2)
	}
}

func TestSlottedPageFull(t *testing.T) {
	buf := make([]byte, 64)
	p := initPage(buf)
	rec := make([]byte, 16)
	n := 0
	for p.insert(rec) >= 0 {
		n++
		if n > 10 {
			t.Fatal("page never filled")
		}
	}
	// 64 bytes: header 4, per record 16+4 slot = 20 -> 3 records.
	if n != 3 {
		t.Errorf("inserted %d records into 64-byte page, want 3", n)
	}
}

func TestSlottedCompact(t *testing.T) {
	buf := make([]byte, 128)
	p := initPage(buf)
	a := p.insert(bytes.Repeat([]byte{1}, 30))
	b := p.insert(bytes.Repeat([]byte{2}, 30))
	c := p.insert(bytes.Repeat([]byte{3}, 30))
	if a < 0 || b < 0 || c < 0 {
		t.Fatal("setup inserts failed")
	}
	if err := p.del(b); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 128)
	p.compact(scratch)
	ra, err := p.get(a)
	if err != nil || !bytes.Equal(ra, bytes.Repeat([]byte{1}, 30)) {
		t.Errorf("record a corrupted by compaction: %v", err)
	}
	rc, err := p.get(c)
	if err != nil || !bytes.Equal(rc, bytes.Repeat([]byte{3}, 30)) {
		t.Errorf("record c corrupted by compaction: %v", err)
	}
	// Freed space is usable again.
	if p.insert(bytes.Repeat([]byte{4}, 30)) < 0 {
		t.Error("compaction did not reclaim dead space")
	}
}

func TestHeapInsertGet(t *testing.T) {
	h := newHeap(t, 4, 8)
	rid, err := h.Insert([]byte("hello record"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello record" {
		t.Errorf("got %q", got)
	}
}

func TestHeapUpdateSameSize(t *testing.T) {
	h := newHeap(t, 4, 8)
	rid, err := h.Insert([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Update(rid, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid, nil)
	if err != nil || string(got) != "bbbb" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestHeapUpdateGrow(t *testing.T) {
	h := newHeap(t, 4, 8)
	rid, err := h.Insert([]byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	long := bytes.Repeat([]byte("x"), 100)
	if err := h.Update(rid, long); err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid, nil)
	if err != nil || !bytes.Equal(got, long) {
		t.Fatalf("grown update mismatch: %v", err)
	}
}

func TestHeapUpdateGrowTriggersCompaction(t *testing.T) {
	h := newHeap(t, 4, 1) // single page
	// Fill most of the page, then repeatedly grow-update one record so
	// dead space accumulates and compaction must kick in.
	rid, err := h.Insert(make([]byte, 40))
	if err != nil {
		t.Fatal(err)
	}
	filler, err := h.Insert(make([]byte, 200))
	if err != nil {
		t.Fatal(err)
	}
	_ = filler
	for n := 41; n <= 48; n++ {
		if err := h.Update(rid, make([]byte, n)); err != nil {
			t.Fatalf("update to %d bytes: %v", n, err)
		}
	}
	got, err := h.Get(rid, nil)
	if err != nil || len(got) != 48 {
		t.Fatalf("final record %d bytes, %v", len(got), err)
	}
}

func TestHeapDelete(t *testing.T) {
	h := newHeap(t, 4, 8)
	rid, err := h.Insert([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid, nil); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("get deleted: %v", err)
	}
	if err := h.Delete(rid); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("double delete: %v", err)
	}
}

func TestHeapRIDValidation(t *testing.T) {
	h := newHeap(t, 4, 4)
	if _, err := h.Get(RID{Page: 99, Slot: 0}, nil); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("foreign page: %v", err)
	}
	if err := h.Update(RID{Page: 0, Slot: 7}, []byte("x")); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("bad slot: %v", err)
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h := newHeap(t, 4, 4)
	if _, err := h.Insert(make([]byte, h.MaxRecordSize()+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversized insert: %v", err)
	}
}

func TestHeapFull(t *testing.T) {
	h := newHeap(t, 4, 1)
	var err error
	for i := 0; i < 1000; i++ {
		if _, err = h.Insert(make([]byte, 64)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
}

func TestHeapScan(t *testing.T) {
	h := newHeap(t, 4, 8)
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec)] = true
	}
	got := 0
	err := h.Scan(func(rid RID, rec []byte) error {
		if !want[string(rec)] {
			return fmt.Errorf("unexpected record %q", rec)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("scanned %d records, want 50", got)
	}
}

func TestHeapSurvivesFlushAndEviction(t *testing.T) {
	// Tiny pool (2 frames) over many pages: every operation churns through
	// flash; contents must persist.
	h := newHeap(t, 2, 16)
	rng := rand.New(rand.NewSource(17))
	type entry struct {
		rid RID
		val []byte
	}
	var entries []entry
	for i := 0; i < 120; i++ {
		rec := make([]byte, 20+rng.Intn(40))
		rng.Read(rec)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{rid, append([]byte(nil), rec...)})
	}
	// Random updates.
	for i := 0; i < 200; i++ {
		e := &entries[rng.Intn(len(entries))]
		rng.Read(e.val)
		if err := h.Update(e.rid, e.val); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		got, err := h.Get(e.rid, nil)
		if err != nil {
			t.Fatalf("%v: %v", e.rid, err)
		}
		if !bytes.Equal(got, e.val) {
			t.Fatalf("%v content mismatch", e.rid)
		}
	}
}

// Property: any sequence of insert/delete pairs leaves the page internally
// consistent: live records readable, free space non-negative.
func TestQuickSlottedPageConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		buf := make([]byte, 256)
		p := initPage(buf)
		type rec struct {
			slot int
			val  []byte
		}
		var live []rec
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				val := bytes.Repeat([]byte{op}, int(op%23)+1)
				s := p.insert(val)
				if s >= 0 {
					live = append(live, rec{s, val})
				}
			} else {
				i := int(op) % len(live)
				if err := p.del(live[i].slot); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if p.freeSpace() < 0 {
				return false
			}
		}
		for _, r := range live {
			got, err := p.get(r.slot)
			if err != nil || !bytes.Equal(got, r.val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
