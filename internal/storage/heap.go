package storage

import (
	"errors"
	"fmt"

	"pdl/internal/buffer"
	"pdl/internal/ftl"
)

// RID identifies a record: the logical page holding it and its slot.
type RID struct {
	Page uint32
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", r.Page, r.Slot) }

// Heap is a heap file over a contiguous range of logical pages accessed
// through a shared buffer pool. Several heaps (tables) partition one
// database's page space. Durability is the pool's: flushing the shared
// pool reflects every heap's dirty pages as one pid-ordered write batch.
type Heap struct {
	pool     *buffer.Pool
	first    uint32 // first logical page of the range
	numPages uint32
	pageSize int

	// nextInsert remembers where the last insert landed, giving O(1)
	// appends for bulk loads.
	nextInsert uint32
	scratch    []byte
}

// NewHeap builds a heap over pages [first, first+numPages).
func NewHeap(pool *buffer.Pool, first, numPages uint32) (*Heap, error) {
	if numPages == 0 {
		return nil, fmt.Errorf("storage: heap needs at least one page")
	}
	return &Heap{
		pool:     pool,
		first:    first,
		numPages: numPages,
		pageSize: pool.PageSize(),
		scratch:  make([]byte, pool.PageSize()),
	}, nil
}

// First returns the first logical page of the heap's range.
func (h *Heap) First() uint32 { return h.first }

// NumPages returns the number of pages in the heap's range.
func (h *Heap) NumPages() uint32 { return h.numPages }

// MaxRecordSize returns the largest insertable record.
func (h *Heap) MaxRecordSize() int { return h.pageSize - pageHdrSize - slotSize }

// InsertHint returns the page index (relative to the heap's range) where
// the last insert landed. Persisting it across a restart and restoring it
// with SetInsertHint keeps post-reopen inserts O(1) instead of re-probing
// the full pages at the front of the range; it is purely a performance
// hint and never affects contents.
func (h *Heap) InsertHint() uint32 { return h.nextInsert }

// SetInsertHint restores a persisted insert position. Out-of-range values
// are clamped into the heap.
func (h *Heap) SetInsertHint(idx uint32) {
	if idx >= h.numPages {
		idx = 0
	}
	h.nextInsert = idx
}

// frame fetches the page'th page of the heap as a slotted page, faulting
// it in from flash, or creating a fresh zeroed page if it has never been
// written.
func (h *Heap) frame(pageIdx uint32) (page, error) {
	pid := h.first + pageIdx
	buf, err := h.pool.Get(pid)
	if errors.Is(err, ftl.ErrNotWritten) {
		buf, err = h.pool.GetNew(pid)
	}
	if err != nil {
		return page{}, err
	}
	return asPage(buf), nil
}

// Insert places rec into the heap, returning its record id.
func (h *Heap) Insert(rec []byte) (RID, error) {
	if len(rec) > h.MaxRecordSize() {
		return RID{}, fmt.Errorf("%w: %d bytes, max %d", ErrRecordTooLarge, len(rec), h.MaxRecordSize())
	}
	for tries := uint32(0); tries < h.numPages; tries++ {
		idx := (h.nextInsert + tries) % h.numPages
		p, err := h.frame(idx)
		if err != nil {
			return RID{}, err
		}
		slot := p.insert(rec)
		if slot < 0 {
			continue
		}
		if err := h.pool.MarkDirty(h.first + idx); err != nil {
			return RID{}, err
		}
		h.nextInsert = idx
		return RID{Page: h.first + idx, Slot: uint16(slot)}, nil
	}
	return RID{}, ErrNoSpace
}

// checkRID validates that rid names a page of this heap.
func (h *Heap) checkRID(rid RID) error {
	if rid.Page < h.first || rid.Page >= h.first+h.numPages {
		return fmt.Errorf("%w: page %d outside heap [%d,%d)", ErrInvalidRID,
			rid.Page, h.first, h.first+h.numPages)
	}
	return nil
}

// Get copies the record rid into out, returning the record bytes
// (a sub-slice of out when out has room, else a fresh allocation).
func (h *Heap) Get(rid RID, out []byte) ([]byte, error) {
	if err := h.checkRID(rid); err != nil {
		return nil, err
	}
	p, err := h.frame(rid.Page - h.first)
	if err != nil {
		return nil, err
	}
	rec, err := p.get(int(rid.Slot))
	if err != nil {
		return nil, fmt.Errorf("%v: %w", rid, err)
	}
	if cap(out) < len(rec) {
		out = make([]byte, len(rec))
	}
	out = out[:len(rec)]
	copy(out, rec)
	return out, nil
}

// Update overwrites record rid with rec. Same-size updates are in-place;
// size changes must still fit the page (after compaction if needed).
func (h *Heap) Update(rid RID, rec []byte) error {
	if err := h.checkRID(rid); err != nil {
		return err
	}
	if len(rec) > h.MaxRecordSize() {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	p, err := h.frame(rid.Page - h.first)
	if err != nil {
		return err
	}
	ok, err := p.update(int(rid.Slot), rec, h.scratch)
	if err != nil {
		return fmt.Errorf("%v: %w", rid, err)
	}
	if !ok {
		return fmt.Errorf("%w: update of %v to %d bytes", ErrNoSpace, rid, len(rec))
	}
	return h.pool.MarkDirty(rid.Page)
}

// Delete removes record rid.
func (h *Heap) Delete(rid RID) error {
	if err := h.checkRID(rid); err != nil {
		return err
	}
	p, err := h.frame(rid.Page - h.first)
	if err != nil {
		return err
	}
	if err := p.del(int(rid.Slot)); err != nil {
		return fmt.Errorf("%v: %w", rid, err)
	}
	return h.pool.MarkDirty(rid.Page)
}

// Scan calls fn for every live record in the heap, in page order. The rec
// slice aliases the page frame and must not be retained or modified.
// Returning a non-nil error from fn stops the scan.
func (h *Heap) Scan(fn func(rid RID, rec []byte) error) error {
	for idx := uint32(0); idx < h.numPages; idx++ {
		p, err := h.frame(idx)
		if err != nil {
			return err
		}
		for s := 0; s < p.slotCount(); s++ {
			rec, err := p.get(s)
			if err != nil {
				continue // dead slot
			}
			if err := fn(RID{Page: h.first + idx, Slot: uint16(s)}, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes dirty pages and method buffers through to flash.
func (h *Heap) Flush() error { return h.pool.Flush() }
