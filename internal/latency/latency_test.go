package latency

import (
	"testing"
	"time"
)

func TestSummarizePercentiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Microsecond)
	}
	s := Summarize(samples)
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	// Nearest-rank on a sorted 1..100us ladder.
	if s.P50Micros != 51 {
		t.Errorf("P50 = %g, want 51", s.P50Micros)
	}
	if s.P99Micros != 100 {
		t.Errorf("P99 = %g, want 100", s.P99Micros)
	}
	if s.MaxMicros != 100 {
		t.Errorf("Max = %g, want 100", s.MaxMicros)
	}
	if s.MeanMicros != 50.5 {
		t.Errorf("Mean = %g, want 50.5", s.MeanMicros)
	}
	var n int64
	for _, b := range s.Histogram {
		n += b.Count
	}
	if n != 100 {
		t.Errorf("histogram counts sum to %d, want 100", n)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.MaxMicros != 0 || len(s.Histogram) != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestMergeSummarize(t *testing.T) {
	a, b := NewRecorder(4), NewRecorder(4)
	for i := 1; i <= 4; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
		b.Record(time.Duration(i) * time.Microsecond)
	}
	s := MergeSummarize([]*Recorder{a, nil, b})
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	if s.MaxMicros != 4000 {
		t.Errorf("Max = %g, want 4000", s.MaxMicros)
	}
}

func TestPercentileMatchesTailRule(t *testing.T) {
	// The rule PR 3's tail experiment used: index = len*p/100, clamped.
	sorted := []time.Duration{1, 2, 3, 4, 5}
	if got := Percentile(sorted, 50); got != 3 {
		t.Errorf("P50 of 1..5 = %d, want 3", got)
	}
	if got := Percentile(sorted, 99); got != 5 {
		t.Errorf("P99 of 1..5 = %d, want 5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50 of empty = %d, want 0", got)
	}
}
