// Package latency is the module's shared per-operation latency
// machinery: recording wall-clock samples cheaply on the hot path,
// merging per-worker sample sets, and summarizing them into the
// percentile columns the tail-latency experiment introduced (p50/p99/max)
// plus a compact logarithmic histogram for persisted reports.
//
// It exists so the GC tail-latency experiment, the YCSB serving
// benchmark, and the BENCH_*.json report schema all agree on exactly how
// a percentile is computed.
package latency

import (
	"sort"
	"time"
)

// Recorder accumulates duration samples for one worker. It is NOT safe
// for concurrent use: give each worker goroutine its own Recorder and
// merge them afterwards with Summarize or MergeSummarize.
type Recorder struct {
	samples []time.Duration
}

// NewRecorder pre-sizes a recorder for about n samples.
func NewRecorder(n int) *Recorder {
	if n < 0 {
		n = 0
	}
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) { r.samples = append(r.samples, d) }

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Samples returns the raw sample slice (owned by the recorder).
func (r *Recorder) Samples() []time.Duration { return r.samples }

// Bucket is one bin of the logarithmic latency histogram: Count samples
// were <= UpToMicros (and greater than the previous bucket's bound).
type Bucket struct {
	UpToMicros float64 `json:"up_to_us"`
	Count      int64   `json:"count"`
}

// Summary condenses a sample set into the columns reports carry. All
// times are in microseconds, matching the simulated-I/O unit the rest of
// the module reports in.
type Summary struct {
	Count      int64    `json:"count"`
	MeanMicros float64  `json:"mean_us"`
	P50Micros  float64  `json:"p50_us"`
	P90Micros  float64  `json:"p90_us"`
	P95Micros  float64  `json:"p95_us"`
	P99Micros  float64  `json:"p99_us"`
	MaxMicros  float64  `json:"max_us"`
	Histogram  []Bucket `json:"histogram,omitempty"`
}

// Percentile returns the p-th percentile (0 < p <= 100) of an ascending
// sorted sample slice, using the same nearest-rank rule the GC
// tail-latency experiment established; zero for an empty slice.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p / 100)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Summarize sorts samples in place and condenses them. The histogram
// uses power-of-two microsecond bounds from 1us up to the bucket
// containing the maximum (at most 32 buckets), so merged reports from
// different runs always share bucket bounds.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
	s := Summary{
		Count:      int64(len(samples)),
		MeanMicros: us(sum) / float64(len(samples)),
		P50Micros:  us(Percentile(samples, 50)),
		P90Micros:  us(Percentile(samples, 90)),
		P95Micros:  us(Percentile(samples, 95)),
		P99Micros:  us(Percentile(samples, 99)),
		MaxMicros:  us(samples[len(samples)-1]),
	}
	bound := time.Microsecond
	i := 0
	for i < len(samples) && len(s.Histogram) < 32 {
		n := int64(0)
		for i < len(samples) && samples[i] <= bound {
			i++
			n++
		}
		s.Histogram = append(s.Histogram, Bucket{UpToMicros: us(bound), Count: n})
		bound *= 2
	}
	if i < len(samples) { // overflow of the 32-bucket cap
		s.Histogram = append(s.Histogram, Bucket{UpToMicros: s.MaxMicros, Count: int64(len(samples) - i)})
	}
	return s
}

// MergeSummarize concatenates every recorder's samples and summarizes
// the union — the join point after per-worker recording.
func MergeSummarize(recs []*Recorder) Summary {
	total := 0
	for _, r := range recs {
		if r != nil {
			total += len(r.samples)
		}
	}
	all := make([]time.Duration, 0, total)
	for _, r := range recs {
		if r != nil {
			all = append(all, r.samples...)
		}
	}
	return Summarize(all)
}
