package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pdl/internal/core"
	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ftltest"
	"pdl/internal/ipl"
	"pdl/internal/opu"
)

func TestWriterParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Comment("test trace\nwith newline"); err != nil {
		t.Fatal(err)
	}
	if err := w.Read(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(7, 100, 41); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Kind: 'R', PID: 5},
		{Kind: 'W', PID: 7, Off: 100, Len: 41},
		{Kind: 'F'},
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"X 1", "R", "W 1 2", "read 5"} {
		if _, err := Parse(strings.NewReader(bad)); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: err = %v, want ErrSyntax", bad, err)
		}
	}
	// Blank lines and comments are fine.
	ops, err := Parse(strings.NewReader("\n# hi\n\nR 1\n"))
	if err != nil || len(ops) != 1 {
		t.Errorf("ops = %v, err = %v", ops, err)
	}
}

func TestSynthesizeShape(t *testing.T) {
	ops := Synthesize(64, 1000, 50, 2, 3, 2048, 1)
	if len(ops) < 1000 {
		t.Fatalf("synthesized %d ops", len(ops))
	}
	reads, writes := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case 'R':
			reads++
		case 'W':
			writes++
			if op.Len != 40 { // 2% of 2048
				t.Fatalf("W len = %d, want 40", op.Len)
			}
			if op.Off < 0 || op.Off+op.Len > 2048 {
				t.Fatalf("W range [%d,%d) out of page", op.Off, op.Off+op.Len)
			}
		default:
			t.Fatalf("unexpected kind %q", op.Kind)
		}
	}
	if reads == 0 || writes == 0 {
		t.Errorf("reads=%d writes=%d; mix missing a side", reads, writes)
	}
	// Update runs come in bursts of nUpdates on one pid.
	for i := 0; i+2 < len(ops); i++ {
		if ops[i].Kind == 'W' && (i == 0 || ops[i-1].Kind != 'W' || ops[i-1].PID != ops[i].PID) {
			if ops[i+1].Kind != 'W' || ops[i+1].PID != ops[i].PID ||
				ops[i+2].Kind != 'W' || ops[i+2].PID != ops[i].PID {
				t.Fatalf("update burst at %d not grouped in threes", i)
			}
			break
		}
	}
}

func replayOver(t *testing.T, build func(chip *flash.Chip) (ftl.Method, error), ops []Op) Result {
	t.Helper()
	chip := flash.NewChip(ftltest.SmallParams(24))
	m, err := build(chip)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m, ops, 9); err != nil {
		t.Fatal(err)
	}
	chip.ResetStats()
	res, err := Replay(m, ops, 10)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReplayAcrossMethods(t *testing.T) {
	ops := Synthesize(48, 800, 60, 3, 1, 512, 2)
	ops = append(ops, Op{Kind: 'F'})
	pdlRes := replayOver(t, func(c *flash.Chip) (ftl.Method, error) {
		return core.New(c, 48, core.Options{MaxDifferentialSize: 64, ReserveBlocks: 2})
	}, ops)
	opuRes := replayOver(t, func(c *flash.Chip) (ftl.Method, error) {
		return opu.New(c, 48, 2)
	}, ops)
	iplRes := replayOver(t, func(c *flash.Chip) (ftl.Method, error) {
		return ipl.New(c, 48, ipl.Options{})
	}, ops)

	// Identical logical work...
	if pdlRes.Updates != opuRes.Updates || pdlRes.Reads != opuRes.Reads {
		t.Errorf("op counts differ: pdl %+v vs opu %+v", pdlRes, opuRes)
	}
	if pdlRes.Updates != iplRes.Updates {
		t.Errorf("op counts differ: pdl %+v vs ipl %+v", pdlRes, iplRes)
	}
	// ...different flash cost, with PDL cheapest on this update-heavy mix.
	if pdlRes.Cost.TimeMicros >= opuRes.Cost.TimeMicros {
		t.Errorf("PDL (%d us) not cheaper than OPU (%d us) on update-heavy trace",
			pdlRes.Cost.TimeMicros, opuRes.Cost.TimeMicros)
	}
}

func TestReplayDeterministic(t *testing.T) {
	ops := Synthesize(32, 300, 50, 2, 1, 512, 3)
	a := replayOver(t, func(c *flash.Chip) (ftl.Method, error) { return opu.New(c, 32, 2) }, ops)
	b := replayOver(t, func(c *flash.Chip) (ftl.Method, error) { return opu.New(c, 32, 2) }, ops)
	if a != b {
		t.Errorf("replays diverged: %+v vs %+v", a, b)
	}
}

func TestReplayContentConsistency(t *testing.T) {
	// Replaying the same trace with the same seed over two methods must
	// leave identical logical content.
	ops := Synthesize(32, 400, 70, 2, 2, 512, 4)
	ops = append(ops, Op{Kind: 'F'})
	build := []func(c *flash.Chip) (ftl.Method, error){
		func(c *flash.Chip) (ftl.Method, error) {
			return core.New(c, 32, core.Options{MaxDifferentialSize: 64, ReserveBlocks: 2})
		},
		func(c *flash.Chip) (ftl.Method, error) { return opu.New(c, 32, 2) },
	}
	var contents [][]byte
	for _, b := range build {
		chip := flash.NewChip(ftltest.SmallParams(24))
		m, err := b(chip)
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(m, ops, 9); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(m, ops, 10); err != nil {
			t.Fatal(err)
		}
		var all []byte
		page := make([]byte, chip.Params().DataSize)
		for pid := uint32(0); pid < 32; pid++ {
			if err := m.ReadPage(pid, page); err != nil {
				t.Fatal(err)
			}
			all = append(all, page...)
		}
		contents = append(contents, all)
	}
	if !bytes.Equal(contents[0], contents[1]) {
		t.Error("methods diverged in logical content after identical replay")
	}
}

func TestClampRange(t *testing.T) {
	cases := []struct{ off, length, size, wantOff, wantLen int }{
		{0, 10, 100, 0, 10},
		{-5, 10, 100, 0, 10},
		{95, 10, 100, 95, 5},
		{200, 10, 100, 99, 1},
		{50, 0, 100, 50, 1},
	}
	for _, c := range cases {
		off, length := clampRange(c.off, c.length, c.size)
		if off != c.wantOff || length != c.wantLen {
			t.Errorf("clampRange(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.off, c.length, c.size, off, length, c.wantOff, c.wantLen)
		}
	}
}
