// Package trace records and replays page-access traces. The paper's
// evaluation uses synthetic workloads and TPC-C because page-level
// production traces are proprietary; this package makes the substitution
// explicit and reversible: any workload run against a Recorder produces a
// portable trace file, and Replay drives any page-update method through a
// trace — synthetic today, a real captured trace whenever one is
// available — for apples-to-apples method comparisons.
//
// The format is a line-oriented text format, one operation per line:
//
//	# comment
//	R <pid>
//	W <pid> <off> <len>      one update run within a reflection cycle
//	F                        flush (write-through)
//
// W lines between an R and the next R/W of a different pid form one
// read-change-write update operation; Replay merges consecutive W lines of
// one pid into a single reflection, matching the experiment methodology.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"pdl/internal/flash"
	"pdl/internal/ftl"
	"pdl/internal/ipl"
)

// Op is one trace operation.
type Op struct {
	// Kind is 'R' (read), 'W' (write/update run), or 'F' (flush).
	Kind byte
	// PID is the logical page (R and W).
	PID uint32
	// Off and Len describe the changed range (W only).
	Off, Len int
}

// ErrSyntax reports a malformed trace line.
var ErrSyntax = errors.New("trace: syntax error")

// Writer records operations to an output stream.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w for trace output.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Comment emits a comment line.
func (t *Writer) Comment(s string) error {
	_, err := fmt.Fprintf(t.w, "# %s\n", strings.ReplaceAll(s, "\n", " "))
	return err
}

// Read records a read-only operation.
func (t *Writer) Read(pid uint32) error {
	_, err := fmt.Fprintf(t.w, "R %d\n", pid)
	return err
}

// Write records one update run.
func (t *Writer) Write(pid uint32, off, length int) error {
	_, err := fmt.Fprintf(t.w, "W %d %d %d\n", pid, off, length)
	return err
}

// Flush records a write-through.
func (t *Writer) Flush() error {
	if _, err := fmt.Fprintln(t.w, "F"); err != nil {
		return err
	}
	return t.w.Flush()
}

// Close flushes buffered output.
func (t *Writer) Close() error { return t.w.Flush() }

// Parse reads a whole trace.
func Parse(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var op Op
		switch {
		case strings.HasPrefix(text, "R "):
			if _, err := fmt.Sscanf(text, "R %d", &op.PID); err != nil {
				return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, line, text)
			}
			op.Kind = 'R'
		case strings.HasPrefix(text, "W "):
			if _, err := fmt.Sscanf(text, "W %d %d %d", &op.PID, &op.Off, &op.Len); err != nil {
				return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, line, text)
			}
			op.Kind = 'W'
		case text == "F":
			op.Kind = 'F'
		default:
			return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, line, text)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Result summarizes a replay.
type Result struct {
	Reads, Updates, Flushes int64
	Cost                    flash.Stats
}

// Replay drives method through the trace. Page content for writes is
// deterministic pseudo-random data derived from seed, so two replays of
// one trace over different methods perform identical logical work. The
// database must already be loaded (every pid in the trace written once);
// use Load for that.
func Replay(method ftl.Method, ops []Op, seed int64) (Result, error) {
	size := method.PageSize()
	page := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))
	var res Result
	before := method.Stats()

	logger, _ := method.(*ipl.Store)
	i := 0
	for i < len(ops) {
		op := ops[i]
		switch op.Kind {
		case 'R':
			if err := method.ReadPage(op.PID, page); err != nil {
				return res, fmt.Errorf("trace: replay read pid %d: %w", op.PID, err)
			}
			res.Reads++
			i++
		case 'F':
			if err := method.Flush(); err != nil {
				return res, err
			}
			res.Flushes++
			i++
		case 'W':
			// One reflection cycle: read the page, apply every consecutive
			// W of this pid, write back.
			pid := op.PID
			if err := method.ReadPage(pid, page); err != nil {
				return res, fmt.Errorf("trace: replay update pid %d: %w", pid, err)
			}
			for i < len(ops) && ops[i].Kind == 'W' && ops[i].PID == pid {
				w := ops[i]
				off, length := clampRange(w.Off, w.Len, size)
				rng.Read(page[off : off+length])
				if logger != nil {
					if err := logger.LogUpdate(pid, off, page[off:off+length]); err != nil {
						return res, err
					}
				}
				i++
			}
			var err error
			if logger != nil {
				err = logger.Evict(pid)
			} else {
				err = method.WritePage(pid, page)
			}
			if err != nil {
				return res, fmt.Errorf("trace: replay reflect pid %d: %w", pid, err)
			}
			res.Updates++
		default:
			return res, fmt.Errorf("%w: op kind %q", ErrSyntax, op.Kind)
		}
	}
	res.Cost = method.Stats().Sub(before)
	return res, nil
}

// Load writes every page referenced by the trace once, with deterministic
// content, so a replay starts from a fully populated database.
func Load(method ftl.Method, ops []Op, seed int64) error {
	maxPID := uint32(0)
	seen := false
	for _, op := range ops {
		if op.Kind == 'F' {
			continue
		}
		seen = true
		if op.PID > maxPID {
			maxPID = op.PID
		}
	}
	if !seen {
		return nil
	}
	size := method.PageSize()
	page := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))
	for pid := uint32(0); pid <= maxPID; pid++ {
		rng.Read(page)
		if err := method.WritePage(pid, page); err != nil {
			return fmt.Errorf("trace: loading pid %d: %w", pid, err)
		}
	}
	return method.Flush()
}

func clampRange(off, length, size int) (int, int) {
	if off < 0 {
		off = 0
	}
	if off >= size {
		off = size - 1
	}
	if length < 1 {
		length = 1
	}
	if off+length > size {
		length = size - off
	}
	return off, length
}

// Synthesize generates a trace with the paper's workload parameters:
// numOps operations, pctUpdate percent update operations, each update
// changing pctChanged percent of the page at a random offset, grouped in
// reflection cycles of nUpdates.
func Synthesize(numPages, numOps int, pctUpdate, pctChanged float64, nUpdates int, pageSize int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	changeLen := int(float64(pageSize) * pctChanged / 100)
	if changeLen < 1 {
		changeLen = 1
	}
	if changeLen > pageSize {
		changeLen = pageSize
	}
	var ops []Op
	for len(ops) < numOps {
		pid := uint32(rng.Intn(numPages))
		if rng.Float64()*100 < pctUpdate {
			for u := 0; u < nUpdates; u++ {
				off := 0
				if changeLen < pageSize {
					off = rng.Intn(pageSize - changeLen + 1)
				}
				ops = append(ops, Op{Kind: 'W', PID: pid, Off: off, Len: changeLen})
			}
		} else {
			ops = append(ops, Op{Kind: 'R', PID: pid})
		}
	}
	return ops
}
