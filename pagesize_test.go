package pdl_test

import (
	"bytes"
	"math/rand"
	"testing"

	"pdl"
)

// eightKParams builds the Figure 13(b) geometry: 8-Kbyte logical pages
// (with a proportionally scaled spare area), as Lee and Moon also tested.
func eightKParams(blocks int) pdl.FlashParams {
	p := pdl.ScaledFlashParams(blocks)
	p.DataSize = 8192
	p.SpareSize = 256
	return p
}

// TestEightKBPagesAllMethods runs a shadow-checked workload on 8-Kbyte
// pages over every method family.
func TestEightKBPagesAllMethods(t *testing.T) {
	const numPages = 48
	builders := map[string]func(*pdl.Chip) (pdl.Method, error){
		"PDL(1KB)": func(c *pdl.Chip) (pdl.Method, error) {
			return pdl.Open(c, numPages, pdl.Options{MaxDifferentialSize: 1024})
		},
		"OPU": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenOPU(c, numPages) },
		"IPU": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenIPU(c, numPages) },
		"IPL": func(c *pdl.Chip) (pdl.Method, error) {
			return pdl.OpenIPL(c, numPages, pdl.IPLOptions{})
		},
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			chip := pdl.NewChip(eightKParams(12))
			m, err := build(chip)
			if err != nil {
				t.Fatal(err)
			}
			size := chip.Params().DataSize
			if size != 8192 {
				t.Fatalf("page size %d", size)
			}
			rng := rand.New(rand.NewSource(11))
			shadow := make([][]byte, numPages)
			for pid := 0; pid < numPages; pid++ {
				shadow[pid] = make([]byte, size)
				rng.Read(shadow[pid])
				if err := m.WritePage(uint32(pid), shadow[pid]); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 300; i++ {
				pid := rng.Intn(numPages)
				off := rng.Intn(size - 160)
				rng.Read(shadow[pid][off : off+160]) // ~2% of 8 KB
				if err := m.WritePage(uint32(pid), shadow[pid]); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, size)
			for pid := 0; pid < numPages; pid++ {
				if err := m.ReadPage(uint32(pid), buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, shadow[pid]) {
					t.Fatalf("pid %d mismatch", pid)
				}
			}
		})
	}
}

// TestEightKBRecovery: crash recovery must be page-size independent.
func TestEightKBRecovery(t *testing.T) {
	chip := pdl.NewChip(eightKParams(12))
	opts := pdl.Options{MaxDifferentialSize: 1024}
	store, err := pdl.Open(chip, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	rng := rand.New(rand.NewSource(13))
	shadow := make([][]byte, 32)
	for pid := 0; pid < 32; pid++ {
		shadow[pid] = make([]byte, size)
		rng.Read(shadow[pid])
		if err := store.WritePage(uint32(pid), shadow[pid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := pdl.Recover(chip, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	for pid := 0; pid < 32; pid++ {
		if err := r.ReadPage(uint32(pid), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, shadow[pid]) {
			t.Fatalf("pid %d mismatch after recovery", pid)
		}
	}
}
