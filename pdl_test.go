package pdl_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pdl"
)

func TestPublicAPIQuickstart(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 256, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	page := make([]byte, size)
	rng := rand.New(rand.NewSource(1))
	rng.Read(page)
	if err := store.WritePage(42, page); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := store.ReadPage(42, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Error("round trip failed")
	}
	if chip.Stats().Ops() == 0 {
		t.Error("no simulated I/O recorded")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	size := pdl.DefaultFlashParams().DataSize
	page := make([]byte, size)
	builders := map[string]func(*pdl.Chip) (pdl.Method, error){
		"PDL": func(c *pdl.Chip) (pdl.Method, error) { return pdl.Open(c, 64, pdl.Options{}) },
		"OPU": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenOPU(c, 64) },
		"IPU": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenIPU(c, 64) },
		"IPL": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenIPL(c, 64, pdl.IPLOptions{}) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			chip := pdl.NewChip(pdl.ScaledFlashParams(8))
			m, err := build(chip)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.WritePage(0, page); err != nil {
				t.Fatal(err)
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, size)
			if err := m.ReadPage(0, got); err != nil {
				t.Fatal(err)
			}
			if err := m.ReadPage(63, got); !errors.Is(err, pdl.ErrNotWritten) {
				t.Errorf("unwritten read: %v", err)
			}
			if m.Name() == "" {
				t.Error("empty method name")
			}
		})
	}
}

func TestPublicAPIRecover(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(16))
	store, err := pdl.Open(chip, 64, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	pages := make([][]byte, 64)
	rng := rand.New(rand.NewSource(2))
	for pid := range pages {
		pages[pid] = make([]byte, size)
		rng.Read(pages[pid])
		if err := store.WritePage(uint32(pid), pages[pid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	recovered, err := pdl.Recover(chip, 64, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	for pid := range pages {
		if err := recovered.ReadPage(uint32(pid), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pages[pid]) {
			t.Fatalf("pid %d mismatch after recovery", pid)
		}
	}
}

func TestPublicAPIPoolHeapBTree(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 1024, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pdl.NewPool(store, 32)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pdl.NewHeap(pool, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pdl.NewBTree(pool, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Index heap records by key through the tree.
	for k := uint64(0); k < 300; k++ {
		rid, err := heap.Insert([]byte{byte(k), byte(k >> 8), 0xEE})
		if err != nil {
			t.Fatal(err)
		}
		packed := uint64(rid.Page)<<16 | uint64(rid.Slot)
		if err := tree.Insert(k, packed); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 300; k += 17 {
		packed, err := tree.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		rid := pdl.RID{Page: uint32(packed >> 16), Slot: uint16(packed & 0xFFFF)}
		rec, err := heap.Get(rid, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0] != byte(k) || rec[1] != byte(k>>8) {
			t.Fatalf("key %d resolved to wrong record", k)
		}
	}
}

func TestFacadeWriteBatch(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(16))
	store, err := pdl.Open(chip, 64, pdl.Options{MaxDifferentialSize: 256, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	size := store.PageSize()
	batch := make([]pdl.PageWrite, 8)
	for i := range batch {
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(i + j)
		}
		batch[i] = pdl.PageWrite{PID: uint32(i * 5), Data: data}
	}
	var bw pdl.BatchWriter = store // the store advertises batch support
	if err := bw.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	for _, w := range batch {
		if err := store.ReadPage(w.PID, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w.Data) {
			t.Fatalf("pid %d: batch write not visible", w.PID)
		}
	}
	tel := store.Telemetry()
	if tel.BatchWrites == 0 || tel.BatchedPages == 0 {
		t.Errorf("batch telemetry not counted: %+v", tel)
	}

	// A pool over the store flushes through the batch path, and eviction
	// clustering is reachable through the facade options.
	pool, err := pdl.NewPoolOpts(store, 4, pdl.PoolOptions{EvictionBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 8; pid++ {
		d, err := pool.GetNew(40 + pid)
		if err != nil {
			t.Fatal(err)
		}
		d[0] = byte(pid)
		if err := pool.MarkDirty(40 + pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 8; pid++ {
		if err := store.ReadPage(40+pid, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(pid) {
			t.Fatalf("pool page %d lost", 40+pid)
		}
	}
}

func TestFacadeReadBatchAndDiffCache(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(16))
	store, err := pdl.Open(chip, 64, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	size := store.PageSize()
	rng := rand.New(rand.NewSource(9))
	shadow := make([][]byte, 64)
	for pid := range shadow {
		shadow[pid] = make([]byte, size)
		rng.Read(shadow[pid])
		if err := store.WritePage(uint32(pid), shadow[pid]); err != nil {
			t.Fatal(err)
		}
	}
	// Small updates + Flush make every page diff-bearing (base + diff).
	for pid := range shadow {
		shadow[pid][7] ^= 0xFF
		if err := store.WritePage(uint32(pid), shadow[pid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	var br pdl.BatchReader = store // the store advertises batch reads
	pids := []uint32{3, 9, 27, 9}
	bufs := make([][]byte, len(pids))
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	if err := br.ReadBatch(pids, bufs); err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		if !bytes.Equal(bufs[i], shadow[pid]) {
			t.Fatalf("batch element %d (pid %d) wrong", i, pid)
		}
	}
	tel := store.Telemetry()
	if tel.BatchReads == 0 || tel.BatchedReads == 0 {
		t.Errorf("read-batch telemetry not counted: %+v", tel)
	}
	// Re-reading a pid hits the decoded-differential cache: one device
	// read instead of two.
	chip.ResetStats()
	if err := store.ReadPage(3, bufs[0]); err != nil {
		t.Fatal(err)
	}
	if got := chip.Stats().Reads; got != 1 {
		t.Errorf("hot read cost %d device reads, want 1 (cache hit)", got)
	}
	if store.Telemetry().DiffCacheHits == 0 {
		t.Error("no cache hit recorded")
	}

	// DiffCacheOff restores the paper's two-read PDL_Reading.
	off, err := pdl.Recover(chip, 64, pdl.Options{MaxDifferentialSize: 256, DiffCachePages: pdl.DiffCacheOff})
	if err != nil {
		t.Fatal(err)
	}
	chip.ResetStats()
	if err := off.ReadPage(3, bufs[0]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufs[0], shadow[3]) {
		t.Fatal("recovered cache-off read wrong content")
	}
	if got := chip.Stats().Reads; got != 2 {
		t.Errorf("cache-off read cost %d device reads, want 2", got)
	}

	// Pool.GetMany and Readahead are reachable through the facade.
	pool, err := pdl.NewPoolOpts(store, 8, pdl.PoolOptions{Readahead: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pool.GetMany([]uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, pid := range []uint32{1, 2, 3} {
		if !bytes.Equal(out[i], shadow[pid]) {
			t.Fatalf("GetMany pid %d wrong", pid)
		}
	}
	if n, err := pool.Readahead([]uint32{10, 11}); err != nil || n != 2 {
		t.Fatalf("Readahead = (%d, %v), want (2, nil)", n, err)
	}
}
