package pdl_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pdl"
)

func TestPublicAPIQuickstart(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 256, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	page := make([]byte, size)
	rng := rand.New(rand.NewSource(1))
	rng.Read(page)
	if err := store.WritePage(42, page); err != nil {
		t.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := store.ReadPage(42, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Error("round trip failed")
	}
	if chip.Stats().Ops() == 0 {
		t.Error("no simulated I/O recorded")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	size := pdl.DefaultFlashParams().DataSize
	page := make([]byte, size)
	builders := map[string]func(*pdl.Chip) (pdl.Method, error){
		"PDL": func(c *pdl.Chip) (pdl.Method, error) { return pdl.Open(c, 64, pdl.Options{}) },
		"OPU": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenOPU(c, 64) },
		"IPU": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenIPU(c, 64) },
		"IPL": func(c *pdl.Chip) (pdl.Method, error) { return pdl.OpenIPL(c, 64, pdl.IPLOptions{}) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			chip := pdl.NewChip(pdl.ScaledFlashParams(8))
			m, err := build(chip)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.WritePage(0, page); err != nil {
				t.Fatal(err)
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, size)
			if err := m.ReadPage(0, got); err != nil {
				t.Fatal(err)
			}
			if err := m.ReadPage(63, got); !errors.Is(err, pdl.ErrNotWritten) {
				t.Errorf("unwritten read: %v", err)
			}
			if m.Name() == "" {
				t.Error("empty method name")
			}
		})
	}
}

func TestPublicAPIRecover(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(16))
	store, err := pdl.Open(chip, 64, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	pages := make([][]byte, 64)
	rng := rand.New(rand.NewSource(2))
	for pid := range pages {
		pages[pid] = make([]byte, size)
		rng.Read(pages[pid])
		if err := store.WritePage(uint32(pid), pages[pid]); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	recovered, err := pdl.Recover(chip, 64, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	for pid := range pages {
		if err := recovered.ReadPage(uint32(pid), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pages[pid]) {
			t.Fatalf("pid %d mismatch after recovery", pid)
		}
	}
}

func TestPublicAPIPoolHeapBTree(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 1024, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pdl.NewPool(store, 32)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pdl.NewHeap(pool, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pdl.NewBTree(pool, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Index heap records by key through the tree.
	for k := uint64(0); k < 300; k++ {
		rid, err := heap.Insert([]byte{byte(k), byte(k >> 8), 0xEE})
		if err != nil {
			t.Fatal(err)
		}
		packed := uint64(rid.Page)<<16 | uint64(rid.Slot)
		if err := tree.Insert(k, packed); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 300; k += 17 {
		packed, err := tree.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		rid := pdl.RID{Page: uint32(packed >> 16), Slot: uint16(packed & 0xFFFF)}
		rec, err := heap.Get(rid, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0] != byte(k) || rec[1] != byte(k>>8) {
			t.Fatalf("key %d resolved to wrong record", k)
		}
	}
}
