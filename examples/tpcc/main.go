// TPC-C: run the scaled TPC-C mix (45% New-Order, 43% Payment, 4% each
// Order-Status, Delivery, Stock-Level) over page-differential logging and
// the baselines, printing simulated flash I/O time per transaction — a
// miniature of the paper's Experiment 7 / Figure 18.
package main

import (
	"fmt"
	"log"

	"pdl"
)

const (
	warmupTxns  = 500
	measureTxns = 2000
)

func main() {
	scale := pdl.TPCCScale{
		Warehouses:               1,
		ItemCount:                1000,
		DistrictsPerWarehouse:    10,
		CustomersPerDistrict:     60,
		InitialOrdersPerDistrict: 60,
		MaxNewTransactions:       20000,
	}
	pages, err := pdl.TPCCPagesNeeded(scale, pdl.DefaultFlashParams().DataSize)
	if err != nil {
		log.Fatal(err)
	}
	blocks := pages*5/2/64 + 4 // flash at ~2.5x the database
	fmt.Printf("TPC-C: %d warehouses, %d logical pages (%.1f MB database), chip %d blocks\n",
		scale.Warehouses, pages, float64(pages)*2048/1e6, blocks)
	fmt.Printf("%d warmup + %d measured transactions per method, buffer = 2%% of database\n\n",
		warmupTxns, measureTxns)

	bufferPages := pages / 50 // 2% of the database
	methods := []struct {
		name  string
		build func(*pdl.Chip) (pdl.Method, error)
	}{
		{"IPL(18KB)", func(c *pdl.Chip) (pdl.Method, error) {
			return pdl.OpenIPL(c, pages, pdl.IPLOptions{LogPagesPerBlock: 9})
		}},
		{"PDL(2KB)", func(c *pdl.Chip) (pdl.Method, error) {
			return pdl.Open(c, pages, pdl.Options{MaxDifferentialSize: 2048})
		}},
		{"PDL(256B)", func(c *pdl.Chip) (pdl.Method, error) {
			return pdl.Open(c, pages, pdl.Options{MaxDifferentialSize: 256})
		}},
		{"OPU", func(c *pdl.Chip) (pdl.Method, error) {
			return pdl.OpenOPU(c, pages)
		}},
	}

	fmt.Printf("%-12s %14s %10s %10s %10s\n", "method", "us/txn (sim)", "reads", "writes", "erases")
	for _, mm := range methods {
		chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
		m, err := mm.build(chip)
		if err != nil {
			log.Fatal(err)
		}
		db, err := pdl.LoadTPCC(m, scale, bufferPages, 1)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < warmupTxns; i++ {
			if err := db.Run(db.NextTx()); err != nil {
				log.Fatal(err)
			}
		}
		chip.ResetStats()
		for i := 0; i < measureTxns; i++ {
			if err := db.Run(db.NextTx()); err != nil {
				log.Fatal(err)
			}
		}
		st := chip.Stats()
		fmt.Printf("%-12s %14.1f %10d %10d %10d\n",
			mm.name, float64(st.TimeMicros)/measureTxns, st.Reads, st.Writes, st.Erases)
	}
}
