// Crashrecovery: run an update workload over page-differential logging,
// pull the power mid-write, then rebuild the store from flash contents
// alone with the paper's PDL_RecoveringfromCrash algorithm (one scan
// through the physical pages, time-stamp arbitration between co-existing
// versions).
//
// Two facts to observe in the output:
//   - everything flushed before the crash is intact afterwards;
//   - differentials that only lived in the in-memory write buffer are
//     gone, exactly as the paper specifies for data "retained in the
//     write buffer only but not written out to flash memory".
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"pdl"
)

const (
	numPages = 1024
	blocks   = 96
)

func main() {
	chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
	store, err := pdl.Open(chip, numPages, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	pageSize := chip.Params().DataSize
	rng := rand.New(rand.NewSource(7))

	// Load and remember every page's content.
	shadow := make([][]byte, numPages)
	for pid := 0; pid < numPages; pid++ {
		shadow[pid] = make([]byte, pageSize)
		rng.Read(shadow[pid])
		if err := store.WritePage(uint32(pid), shadow[pid]); err != nil {
			log.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	durable := snapshot(shadow)
	fmt.Printf("loaded and flushed %d pages\n", numPages)

	// Update randomly; flush every 50 operations so there is a mix of
	// durable and buffered state when the power goes out.
	chip.SchedulePowerFailure(400) // fires mid-workload, inside a program
	crashed := false
	ops := 0
	for i := 0; i < 100000 && !crashed; i++ {
		pid := rng.Intn(numPages)
		off := rng.Intn(pageSize - 32)
		rng.Read(shadow[pid][off : off+32])
		err := store.WritePage(uint32(pid), shadow[pid])
		switch {
		case err == nil:
			ops++
		case errors.Is(err, pdl.ErrPowerLoss):
			crashed = true
		default:
			log.Fatal(err)
		}
		if !crashed && i%50 == 49 {
			if err := store.Flush(); errors.Is(err, pdl.ErrPowerLoss) {
				crashed = true
			} else if err != nil {
				log.Fatal(err)
			} else {
				durable = snapshot(shadow)
			}
		}
	}
	fmt.Printf("power failed after %d successful update operations (torn page on flash)\n", ops)

	// Recovery: one scan of the chip rebuilds the mapping tables.
	before := chip.Stats()
	recovered, err := pdl.Recover(chip, numPages, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	scan := chip.Stats().Sub(before)
	fmt.Printf("recovery scan: %d reads, %d obsolete marks, %.1f ms simulated\n",
		scan.Reads, scan.Writes, float64(scan.TimeMicros)/1000)

	// Verify: every page readable; pages equal their last durable version
	// or a later successfully-written one.
	buf := make([]byte, pageSize)
	atDurable, newer := 0, 0
	for pid := 0; pid < numPages; pid++ {
		if err := recovered.ReadPage(uint32(pid), buf); err != nil {
			log.Fatalf("pid %d unreadable after recovery: %v", pid, err)
		}
		switch {
		case bytes.Equal(buf, durable[pid]):
			atDurable++
		default:
			newer++
		}
	}
	fmt.Printf("verified %d pages: %d at last durable version, %d carried a newer flushed differential\n",
		numPages, atDurable, newer)

	// The recovered store is fully operational.
	rng.Read(shadow[0])
	if err := recovered.WritePage(0, shadow[0]); err != nil {
		log.Fatal(err)
	}
	if err := recovered.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := recovered.ReadPage(0, buf); err != nil || !bytes.Equal(buf, shadow[0]) {
		log.Fatal("post-recovery write failed")
	}
	fmt.Println("post-recovery writes and reads work; store is live")
}

func snapshot(pages [][]byte) [][]byte {
	out := make([][]byte, len(pages))
	for i := range pages {
		out[i] = append([]byte(nil), pages[i]...)
	}
	return out
}
