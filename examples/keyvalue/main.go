// Keyvalue: an embedded key-value store — B+-tree index over heap records,
// behind an LRU buffer pool — run over page-differential logging and over
// the page-based baseline, comparing simulated flash I/O.
//
// The workload is the one the paper's motivation targets: many small
// in-place record updates. PDL turns each page write-back into a small
// differential; the page-based method rewrites whole pages.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"pdl"
)

const (
	numPages   = 4096 // logical database size
	heapPages  = 2048
	treePages  = 1024
	poolFrames = 64
	numKeys    = 4000
	numUpdates = 20000
	valueSize  = 64
)

func main() {
	fmt.Printf("%-12s %10s %10s %10s %14s\n", "method", "reads", "writes", "erases", "sim I/O time")
	for _, method := range []string{"PDL(256B)", "OPU"} {
		stats, err := run(method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d %10d %10d %14s\n",
			method, stats.Reads, stats.Writes, stats.Erases, stats.Time())
	}
}

func run(method string) (pdl.FlashStats, error) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(256)) // 32 MB
	var m pdl.Method
	var err error
	switch method {
	case "PDL(256B)":
		m, err = pdl.Open(chip, numPages, pdl.Options{MaxDifferentialSize: 256})
	case "OPU":
		m, err = pdl.OpenOPU(chip, numPages)
	default:
		return pdl.FlashStats{}, fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return pdl.FlashStats{}, err
	}
	pool, err := pdl.NewPool(m, poolFrames)
	if err != nil {
		return pdl.FlashStats{}, err
	}
	heap, err := pdl.NewHeap(pool, 0, heapPages)
	if err != nil {
		return pdl.FlashStats{}, err
	}
	tree, err := pdl.NewBTree(pool, heapPages, treePages)
	if err != nil {
		return pdl.FlashStats{}, err
	}

	rng := rand.New(rand.NewSource(42))
	val := make([]byte, valueSize)

	// Load: insert records, index them by key.
	for k := uint64(0); k < numKeys; k++ {
		rng.Read(val)
		binary.LittleEndian.PutUint64(val, k) // embed the key for checking
		rid, err := heap.Insert(val)
		if err != nil {
			return pdl.FlashStats{}, err
		}
		if err := tree.Insert(k, packRID(rid)); err != nil {
			return pdl.FlashStats{}, err
		}
	}
	if err := pool.Flush(); err != nil {
		return pdl.FlashStats{}, err
	}

	// Measure: point updates through the index (each changes a few bytes
	// of one record), with occasional reads.
	chip.ResetStats()
	for i := 0; i < numUpdates; i++ {
		k := uint64(rng.Intn(numKeys))
		packed, err := tree.Get(k)
		if err != nil {
			return pdl.FlashStats{}, err
		}
		rid := unpackRID(packed)
		rec, err := heap.Get(rid, val[:0])
		if err != nil {
			return pdl.FlashStats{}, err
		}
		if got := binary.LittleEndian.Uint64(rec); got != k {
			return pdl.FlashStats{}, fmt.Errorf("key %d resolved to record of key %d", k, got)
		}
		// Small in-place update: bump a counter field.
		binary.LittleEndian.PutUint32(rec[8:], binary.LittleEndian.Uint32(rec[8:])+1)
		if err := heap.Update(rid, rec); err != nil {
			return pdl.FlashStats{}, err
		}
	}
	if err := pool.Flush(); err != nil {
		return pdl.FlashStats{}, err
	}
	return chip.Stats(), nil
}

func packRID(rid pdl.RID) uint64 {
	return uint64(rid.Page)<<16 | uint64(rid.Slot)
}

func unpackRID(v uint64) pdl.RID {
	return pdl.RID{Page: uint32(v >> 16), Slot: uint16(v & 0xFFFF)}
}
