// Keyvalue: the serving layer's concurrent key-value store — lock-striped
// buckets of B+-tree index over heap records, each behind its own buffer
// pool — run over page-differential logging and over the page-based
// baseline, comparing simulated flash I/O.
//
// The workload is the one the paper's motivation targets: many small
// record updates from concurrent clients. PDL turns each page write-back
// into a small differential; the page-based method rewrites whole pages.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"pdl"
)

const (
	numKeys    = 4000
	numUpdates = 20000
	valueSize  = 64
	clients    = 4
)

func main() {
	fmt.Printf("%-12s %10s %10s %10s %14s\n", "method", "reads", "writes", "erases", "sim I/O time")
	for _, method := range []string{"PDL(256B)", "OPU"} {
		stats, err := run(method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d %10d %10d %14s\n",
			method, stats.Reads, stats.Writes, stats.Erases, stats.Time())
	}
}

func run(method string) (pdl.FlashStats, error) {
	opts := pdl.KVOptions{Buckets: 8, PoolPages: 8}
	numPages := pdl.KVPagesNeeded(numKeys, valueSize, pdl.ScaledFlashParams(1).DataSize, opts)
	chip := pdl.NewChip(pdl.ScaledFlashParams(256)) // 32 MB
	var m pdl.Method
	var err error
	switch method {
	case "PDL(256B)":
		// Shards sized to the client count: concurrent writers land on
		// distinct differential buffers.
		m, err = pdl.Open(chip, int(numPages), pdl.Options{MaxDifferentialSize: 256, Shards: clients})
	case "OPU":
		// The baseline is not concurrency-safe; the kv store funnels it
		// through one mutex automatically.
		m, err = pdl.OpenOPU(chip, int(numPages))
	default:
		return pdl.FlashStats{}, fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return pdl.FlashStats{}, err
	}
	db, err := pdl.OpenKV(m, numPages, opts)
	if err != nil {
		return pdl.FlashStats{}, err
	}
	defer db.Close()

	// Load: insert records in batches (each batch is atomic with respect
	// to concurrent Scans).
	rng := rand.New(rand.NewSource(42))
	batch := make([]pdl.KVEntry, 0, 64)
	for k := uint64(0); k < numKeys; k++ {
		val := make([]byte, valueSize)
		rng.Read(val)
		binary.LittleEndian.PutUint64(val, k) // embed the key for checking
		batch = append(batch, pdl.KVEntry{Key: k, Value: val})
		if len(batch) == cap(batch) || k == numKeys-1 {
			if err := db.PutBatch(batch); err != nil {
				return pdl.FlashStats{}, err
			}
			batch = batch[:0]
		}
	}
	if err := db.Sync(); err != nil {
		return pdl.FlashStats{}, err
	}

	// Measure: concurrent point updates through the store (each bumps a
	// counter field of one record).
	chip.ResetStats()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			buf := make([]byte, 0, valueSize)
			for i := 0; i < numUpdates/clients; i++ {
				k := uint64(rng.Intn(numKeys))
				rec, err := db.Get(k, buf)
				if err != nil {
					errs[c] = err
					return
				}
				if got := binary.LittleEndian.Uint64(rec); got != k {
					errs[c] = fmt.Errorf("key %d resolved to record of key %d", k, got)
					return
				}
				binary.LittleEndian.PutUint32(rec[8:], binary.LittleEndian.Uint32(rec[8:])+1)
				if err := db.Put(k, rec); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return pdl.FlashStats{}, err
		}
	}

	// A snapshot-consistent scan sees every loaded key exactly once.
	seen := 0
	err = db.Scan(0, ^uint64(0), numKeys+1, func(k uint64, v []byte) bool {
		seen++
		return true
	})
	if err != nil {
		return pdl.FlashStats{}, err
	}
	if seen != numKeys {
		return pdl.FlashStats{}, fmt.Errorf("scan saw %d keys, want %d", seen, numKeys)
	}
	if err := db.Sync(); err != nil {
		return pdl.FlashStats{}, err
	}
	return chip.Stats(), nil
}
