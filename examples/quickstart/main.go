// Quickstart: open a page-differential logging store on an emulated NAND
// chip, write and read logical pages, and inspect the simulated flash
// cost. This is the paper's core loop — note that a lightly updated page
// costs one base-page read (to compute the differential) and no program
// at all until the one-page differential write buffer fills.
//
// The final section swaps the emulator for the persistent file-backed
// device: the same store API, but the data survives a process restart.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"pdl"
)

func main() {
	// A 16-MB emulated chip with the datasheet timings of the paper's
	// Table 1 (Tread=110us, Twrite=1010us, Terase=1500us).
	chip := pdl.NewChip(pdl.ScaledFlashParams(128))

	// PDL(256B): differentials above 256 bytes fall back to rewriting the
	// page — the configuration the paper recommends.
	store, err := pdl.Open(chip, 2048, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}

	pageSize := store.PageSize()
	page := make([]byte, pageSize)
	rng := rand.New(rand.NewSource(1))

	// Load 2048 logical pages.
	for pid := uint32(0); pid < 2048; pid++ {
		rng.Read(page)
		if err := store.WritePage(pid, page); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded 2048 pages: %v\n", chip.Stats())

	// A small update: read-modify-write of one page.
	chip.ResetStats()
	if err := store.ReadPage(7, page); err != nil {
		log.Fatal(err)
	}
	copy(page[100:], []byte("page-differential logging"))
	if err := store.WritePage(7, page); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one small update: %v  <- recreate + base-page read; zero writes (differential buffered)\n", chip.Stats())

	// The differential write buffer persists on Flush (write-through).
	chip.ResetStats()
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flush:            %v  <- the buffered differential becomes one differential page\n", chip.Stats())

	// Reading the updated page merges base page + differential.
	chip.ResetStats()
	if err := store.ReadPage(7, page); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read updated:     %v  <- at most two reads, ever\n", chip.Stats())
	fmt.Printf("content check:    %q\n", page[100:125])

	// Compare with the page-based baseline on the same workload.
	chipOPU := pdl.NewChip(pdl.ScaledFlashParams(128))
	opu, err := pdl.OpenOPU(chipOPU, 2048)
	if err != nil {
		log.Fatal(err)
	}
	for pid := uint32(0); pid < 2048; pid++ {
		rng.Read(page)
		if err := opu.WritePage(pid, page); err != nil {
			log.Fatal(err)
		}
	}
	chipOPU.ResetStats()
	if err := opu.ReadPage(7, page); err != nil {
		log.Fatal(err)
	}
	copy(page[100:], []byte("out-place update baseline"))
	if err := opu.WritePage(7, page); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOPU same update:  %v  <- whole-page write + obsolete mark\n", chipOPU.Stats())

	// The same store runs on persistent storage: a file-backed device
	// survives Close and reopen (and therefore process restarts).
	dir, err := os.MkdirTemp("", "pdl-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "db.flash")

	dev, err := pdl.OpenFileDevice(dbPath, pdl.FileDeviceOptions{
		Params: pdl.ScaledFlashParams(64), // geometry recorded in the file
	})
	if err != nil {
		log.Fatal(err)
	}
	fstore, err := pdl.Open(dev, 512, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	want := make([]byte, fstore.PageSize())
	copy(want, []byte("survives a process restart"))
	if err := fstore.WritePage(11, want); err != nil {
		log.Fatal(err)
	}
	if err := fstore.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		log.Fatal(err)
	}

	// "Restart": reopen the same file and rebuild the store from flash
	// contents alone.
	dev, err = pdl.OpenFileDevice(dbPath, pdl.FileDeviceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()
	restored, err := pdl.Recover(dev, 512, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, restored.PageSize())
	if err := restored.ReadPage(11, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("file-backed page differs after reopen")
	}
	fmt.Printf("\nfile backend:     page 11 recovered from %s after close+reopen: %q\n",
		filepath.Base(dbPath), got[:26])
}
