package pdl_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"pdl"
)

// methodsUnderTest builds one instance of every method family over its
// own chip.
func methodsUnderTest(t *testing.T, blocks, numPages int) map[string]pdl.Method {
	t.Helper()
	out := map[string]pdl.Method{}
	{
		chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
		m, err := pdl.Open(chip, numPages, pdl.Options{MaxDifferentialSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		out["PDL(256B)"] = m
	}
	{
		chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
		m, err := pdl.OpenOPU(chip, numPages)
		if err != nil {
			t.Fatal(err)
		}
		out["OPU"] = m
	}
	{
		chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
		m, err := pdl.OpenIPU(chip, numPages)
		if err != nil {
			t.Fatal(err)
		}
		out["IPU"] = m
	}
	{
		chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
		m, err := pdl.OpenIPL(chip, numPages, pdl.IPLOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out["IPL"] = m
	}
	return out
}

// TestHeapOverEveryMethod runs the same record workload over all four
// page-update methods through the full pool+heap stack; contents must be
// identical (the DBMS-independence claim, executed).
func TestHeapOverEveryMethod(t *testing.T) {
	const numPages = 512
	results := map[string][]byte{}
	for name, m := range methodsUnderTest(t, 48, numPages) {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			pool, err := pdl.NewPool(m, 16)
			if err != nil {
				t.Fatal(err)
			}
			heap, err := pdl.NewHeap(pool, 0, 256)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1234)) // same workload per method
			var rids []pdl.RID
			for i := 0; i < 500; i++ {
				rec := make([]byte, 48)
				rng.Read(rec)
				rid, err := heap.Insert(rec)
				if err != nil {
					t.Fatal(err)
				}
				rids = append(rids, rid)
			}
			for i := 0; i < 800; i++ {
				rid := rids[rng.Intn(len(rids))]
				rec, err := heap.Get(rid, nil)
				if err != nil {
					t.Fatal(err)
				}
				rng.Read(rec[:8])
				if err := heap.Update(rid, rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := pool.Flush(); err != nil {
				t.Fatal(err)
			}
			// Digest the full content in rid order.
			var digest []byte
			for _, rid := range rids {
				rec, err := heap.Get(rid, nil)
				if err != nil {
					t.Fatal(err)
				}
				digest = append(digest, rec...)
			}
			results[name] = digest
		})
	}
	want := results["OPU"]
	for name, got := range results {
		if !bytes.Equal(got, want) {
			t.Errorf("method %s produced different contents than OPU", name)
		}
	}
}

// TestBTreeOverPDLWithEviction stresses the index through a tiny pool so
// every split and update round-trips through the differential machinery.
func TestBTreeOverPDLWithEviction(t *testing.T) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(64))
	store, err := pdl.Open(chip, 1024, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pdl.NewPool(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pdl.NewBTree(pool, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(3000)
	for _, k := range keys {
		if err := tree.Insert(uint64(k), uint64(k)*7); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v, err := tree.Get(uint64(k))
		if err != nil || v != uint64(k)*7 {
			t.Fatalf("Get(%d) = %d, %v", k, v, err)
		}
	}
	if chip.Stats().Erases == 0 {
		t.Log("note: workload did not trigger GC (acceptable, pool was tiny)")
	}
}

// TestTPCCDeterminism: the same seed must produce identical flash I/O
// counts — the property the benchmark harness depends on.
func TestTPCCDeterminism(t *testing.T) {
	run := func() pdl.FlashStats {
		scale := pdl.TPCCScale{
			Warehouses:               1,
			ItemCount:                150,
			DistrictsPerWarehouse:    3,
			CustomersPerDistrict:     15,
			InitialOrdersPerDistrict: 15,
			MaxNewTransactions:       2000,
		}
		pages, err := pdl.TPCCPagesNeeded(scale, pdl.DefaultFlashParams().DataSize)
		if err != nil {
			t.Fatal(err)
		}
		blocks := pages*5/2/64 + 4
		chip := pdl.NewChip(pdl.ScaledFlashParams(blocks))
		m, err := pdl.Open(chip, pages, pdl.Options{MaxDifferentialSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		db, err := pdl.LoadTPCC(m, scale, 32, 99)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := db.Run(db.NextTx()); err != nil {
				t.Fatal(err)
			}
		}
		return chip.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed TPC-C runs diverged: %+v vs %+v", a, b)
	}
}

// TestIPLLogUpdateMatchesWritePage: feeding IPL individual update logs
// (tightly coupled) and feeding it whole pages (loosely coupled) must
// converge to the same logical content.
func TestIPLLogUpdateMatchesWritePage(t *testing.T) {
	const numPages = 32
	size := pdl.DefaultFlashParams().DataSize
	mkStore := func() (*pdl.IPLStore, [][]byte) {
		chip := pdl.NewChip(pdl.ScaledFlashParams(16))
		m, err := pdl.OpenIPL(chip, numPages, pdl.IPLOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		shadow := make([][]byte, numPages)
		for pid := 0; pid < numPages; pid++ {
			shadow[pid] = make([]byte, size)
			rng.Read(shadow[pid])
			if err := m.WritePage(uint32(pid), shadow[pid]); err != nil {
				t.Fatal(err)
			}
		}
		return m, shadow
	}
	tight, shadowT := mkStore()
	loose, shadowL := mkStore()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		pid := uint32(rng.Intn(numPages))
		off := rng.Intn(size - 20)
		var chunk [20]byte
		rng.Read(chunk[:])
		// Tightly coupled: log the update, then evict.
		copy(shadowT[pid][off:], chunk[:])
		if err := tight.LogUpdate(pid, off, chunk[:]); err != nil {
			t.Fatal(err)
		}
		if err := tight.Evict(pid); err != nil {
			t.Fatal(err)
		}
		// Loosely coupled: hand over the whole updated page.
		copy(shadowL[pid][off:], chunk[:])
		if err := loose.WritePage(pid, shadowL[pid]); err != nil {
			t.Fatal(err)
		}
	}
	bufT := make([]byte, size)
	bufL := make([]byte, size)
	for pid := 0; pid < numPages; pid++ {
		if err := tight.ReadPage(uint32(pid), bufT); err != nil {
			t.Fatal(err)
		}
		if err := loose.ReadPage(uint32(pid), bufL); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufT, shadowT[pid]) {
			t.Fatalf("pid %d: tightly-coupled content wrong", pid)
		}
		if !bytes.Equal(bufL, shadowL[pid]) {
			t.Fatalf("pid %d: loosely-coupled content wrong", pid)
		}
		if !bytes.Equal(bufT, bufL) {
			t.Fatalf("pid %d: coupling modes diverged", pid)
		}
	}
}

// TestEndToEndCheckpointWorkflow exercises the full public checkpoint API:
// open with a region, work, checkpoint, crash, fast-recover, verify.
func TestEndToEndCheckpointWorkflow(t *testing.T) {
	opts := pdl.Options{MaxDifferentialSize: 256, CheckpointBlocks: 4}
	chip := pdl.NewChip(pdl.ScaledFlashParams(64))
	store, err := pdl.Open(chip, 512, opts)
	if err != nil {
		t.Fatal(err)
	}
	size := chip.Params().DataSize
	page := make([]byte, size)
	for pid := uint32(0); pid < 512; pid++ {
		binary.LittleEndian.PutUint64(page, uint64(pid))
		if err := store.WritePage(pid, page); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint updates, flushed.
	for pid := uint32(0); pid < 50; pid++ {
		binary.LittleEndian.PutUint64(page, uint64(pid))
		binary.LittleEndian.PutUint64(page[8:], 0xBEEF)
		if err := store.WritePage(pid, page); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := pdl.RecoverWithCheckpoint(chip, 512, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 512; pid++ {
		if err := r.ReadPage(pid, page); err != nil {
			t.Fatalf("pid %d: %v", pid, err)
		}
		if got := binary.LittleEndian.Uint64(page); got != uint64(pid) {
			t.Fatalf("pid %d: id field = %d", pid, got)
		}
		marker := binary.LittleEndian.Uint64(page[8:])
		if pid < 50 && marker != 0xBEEF {
			t.Fatalf("pid %d: post-checkpoint update lost", pid)
		}
		if pid >= 50 && marker == 0xBEEF {
			t.Fatalf("pid %d: spurious marker", pid)
		}
	}
}

// TestMixedMethodsShareNothing: two methods on separate chips never
// interfere (regression guard for accidental global state).
func TestMixedMethodsShareNothing(t *testing.T) {
	ms := methodsUnderTest(t, 16, 64)
	size := pdl.DefaultFlashParams().DataSize
	for name, m := range ms {
		page := bytes.Repeat([]byte(name), size/len(name)+1)[:size]
		if err := m.WritePage(7, page); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, size)
	for name, m := range ms {
		if err := m.ReadPage(7, buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.HasPrefix(buf, []byte(name)) {
			t.Errorf("%s: content cross-contaminated: %q", name, buf[:16])
		}
	}
}
