// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a
// reduced geometry and reports the paper's metric (simulated I/O
// microseconds per operation, erases per operation, ...) via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the series the
// figures plot. cmd/pdlbench runs the same experiments at full scale and
// prints the complete tables.
package pdl_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pdl"
	"pdl/internal/bench"
	"pdl/internal/flash"
	"pdl/internal/tpcc"
	"pdl/internal/workload"
)

// benchGeometry is the reduced geometry used by the Go benchmarks: a
// 16-Mbyte chip, steady-state conditioning, datasheet timings.
func benchGeometry() bench.Geometry {
	return bench.Geometry{
		Params:          flash.ScaledParams(128),
		DBFrac:          0.4,
		GCRounds:        1.5,
		ConditionMaxOps: 1_000_000,
		MeasureOps:      5_000,
		Seed:            1,
	}
}

// BenchmarkExp1_Fig12 regenerates Figure 12: read, write, and overall
// simulated I/O time per update operation for the six standard method
// configurations (N_updates_till_write=1, %ChangedByOneU_Op=2).
func BenchmarkExp1_Fig12(b *testing.B) {
	g := benchGeometry()
	for _, spec := range bench.StandardMethods(g.Params) {
		spec := spec
		b.Run(spec.Name(g.Params), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.Exp1(g, []bench.MethodSpec{spec})
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(r.Read, "read-us/op")
				b.ReportMetric(r.Write, "write-us/op")
				b.ReportMetric(r.GC, "gc-us/op")
				b.ReportMetric(r.Overall, "overall-us/op")
			}
		})
	}
}

// BenchmarkExp2_Fig13 regenerates Figure 13(a): overall time per update
// operation as N_updates_till_write varies (2-Kbyte logical pages).
func BenchmarkExp2_Fig13(b *testing.B) {
	g := benchGeometry()
	g.MeasureOps = 3000
	specs := bench.StandardMethods(g.Params)
	for _, spec := range specs {
		spec := spec
		for _, n := range []int{1, 4, 8} {
			n := n
			b.Run(fmt.Sprintf("%s/N=%d", spec.Name(g.Params), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := bench.Exp2(g, []bench.MethodSpec{spec}, []int{n})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rows[0].Overall, "overall-us/op")
				}
			})
		}
	}
}

// BenchmarkExp2_Fig13b regenerates Figure 13(b): the same sweep with
// 8-Kbyte logical pages.
func BenchmarkExp2_Fig13b(b *testing.B) {
	g := benchGeometry()
	g.Params.DataSize = 8192
	g.Params.SpareSize = 256
	g.Params.NumBlocks = 64
	g.MeasureOps = 1500
	specs := []bench.MethodSpec{
		{Kind: bench.KindPDL, Param: g.Params.DataSize / 8},
		{Kind: bench.KindOPU},
		{Kind: bench.KindIPL, Param: 9 * g.Params.PagesPerBlock / 64},
	}
	for _, spec := range specs {
		spec := spec
		for _, n := range []int{1, 8} {
			n := n
			b.Run(fmt.Sprintf("%s/N=%d", spec.Name(g.Params), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := bench.Exp2(g, []bench.MethodSpec{spec}, []int{n})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rows[0].Overall, "overall-us/op")
				}
			})
		}
	}
}

// BenchmarkExp3_Fig14 regenerates Figure 14: overall time per update
// operation as %ChangedByOneU_Op varies (N_updates_till_write = 1).
func BenchmarkExp3_Fig14(b *testing.B) {
	g := benchGeometry()
	g.MeasureOps = 3000
	specs := bench.StandardMethods(g.Params)
	for _, spec := range specs {
		spec := spec
		for _, pct := range []float64{0.5, 2, 10, 50, 100} {
			pct := pct
			b.Run(fmt.Sprintf("%s/pct=%g", spec.Name(g.Params), pct), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := bench.Exp3(g, []bench.MethodSpec{spec}, []float64{pct}, 1)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rows[0].Overall, "overall-us/op")
				}
			})
		}
	}
}

// BenchmarkExp4_Fig15 regenerates Figure 15: overall time per operation
// for mixes of read-only and update operations as %UpdateOps varies.
func BenchmarkExp4_Fig15(b *testing.B) {
	g := benchGeometry()
	g.MeasureOps = 4000
	specs := bench.StandardMethods(g.Params)
	for _, spec := range specs {
		spec := spec
		for _, pct := range []float64{0, 50, 100} {
			pct := pct
			b.Run(fmt.Sprintf("%s/upd=%g", spec.Name(g.Params), pct), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := bench.Exp4(g, []bench.MethodSpec{spec}, []float64{pct}, 1)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rows[0].Overall, "overall-us/op")
				}
			})
		}
	}
}

// BenchmarkExp5_Fig16 regenerates Figure 16: overall time per update
// operation as the Tread and Twrite flash parameters vary. Each method
// runs once; the cost is recomputed from operation counts per timing
// point.
func BenchmarkExp5_Fig16(b *testing.B) {
	g := benchGeometry()
	g.MeasureOps = 3000
	specs := []bench.MethodSpec{
		{Kind: bench.KindPDL, Param: g.Params.DataSize / 8},
		{Kind: bench.KindOPU},
		{Kind: bench.KindIPL, Param: 9 * g.Params.PagesPerBlock / 64},
	}
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			points, err := bench.Exp5(g, specs,
				[]int64{10, 110, 500, 1500}, []int64{500, 1000})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range points {
				b.ReportMetric(p.OverallPerOp,
					fmt.Sprintf("%s-tr%d-tw%d-us/op", p.Method, p.Tread, p.Twrite))
			}
		}
	})
}

// BenchmarkExp6_Fig17 regenerates Figure 17: erase operations per update
// operation as N_updates_till_write varies (flash longevity).
func BenchmarkExp6_Fig17(b *testing.B) {
	g := benchGeometry()
	g.MeasureOps = 4000
	specs := bench.StandardMethods(g.Params)
	for _, spec := range specs {
		spec := spec
		for _, n := range []int{1, 8} {
			n := n
			b.Run(fmt.Sprintf("%s/N=%d", spec.Name(g.Params), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := bench.Exp6(g, []bench.MethodSpec{spec}, []int{n})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rows[0].ErasesPerOp*1000, "erases/kop")
				}
			})
		}
	}
}

// BenchmarkExp7_Fig18 regenerates Figure 18: TPC-C simulated I/O time per
// transaction as the DBMS buffer size varies.
func BenchmarkExp7_Fig18(b *testing.B) {
	g := benchGeometry()
	cfg := bench.Exp7Config{
		Scale: tpcc.Scale{
			Warehouses:               1,
			ItemCount:                400,
			DistrictsPerWarehouse:    5,
			CustomersPerDistrict:     40,
			InitialOrdersPerDistrict: 40,
			MaxNewTransactions:       30000,
		},
		BufferPcts: []float64{0.5, 2, 10},
		WarmupTxns: 400,
		MeasureTxn: 1500,
		Seed:       1,
	}
	specs := []bench.MethodSpec{
		{Kind: bench.KindIPL, Param: 9 * g.Params.PagesPerBlock / 64},
		{Kind: bench.KindPDL, Param: g.Params.DataSize},
		{Kind: bench.KindPDL, Param: g.Params.DataSize / 8},
		{Kind: bench.KindOPU},
	}
	for _, spec := range specs {
		spec := spec
		b.Run(spec.Name(g.Params), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := bench.Exp7(g, []bench.MethodSpec{spec}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range points {
					b.ReportMetric(p.MicrosPerTxn, fmt.Sprintf("buf%g-us/txn", p.BufferPct))
				}
			}
		})
	}
}

// BenchmarkPDLWritePage measures the host-side (not simulated) cost of the
// PDL write path: base-page read, differential computation, buffering.
func BenchmarkPDLWritePage(b *testing.B) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(256))
	store, err := pdl.Open(chip, 2048, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	size := chip.Params().DataSize
	rng := rand.New(rand.NewSource(1))
	page := make([]byte, size)
	for pid := 0; pid < 2048; pid++ {
		rng.Read(page)
		if err := store.WritePage(uint32(pid), page); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pid := uint32(i % 2048)
		if err := store.ReadPage(pid, page); err != nil {
			b.Fatal(err)
		}
		off := (i * 37) % (size - 41)
		rng.Read(page[off : off+41])
		if err := store.WritePage(pid, page); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelWorkerCounts are the goroutine counts the parallel benchmarks
// compare (the tentpole scaling claim is measured at 1 vs 16).
var parallelWorkerCounts = []int{1, 4, 16}

// benchmarkParallelUpdates measures aggregate host-side throughput of full
// update cycles (read, mutate, write) executed by a fixed number of worker
// goroutines, through the workload package's parallel driver — the same
// harness pdlbench's parallel experiment uses (disjoint pid partitions;
// non-concurrency-safe methods serialized behind a mutex). b.N is the
// total operation count, so ns/op is directly comparable across worker
// counts: scaling shows up as ns/op shrinking as workers grow. Speedups
// require GOMAXPROCS > 1; on a single-core host the numbers only measure
// locking overhead.
func benchmarkParallelUpdates(b *testing.B, open func(chip *pdl.Chip, numPages int) (pdl.Method, error), workers int) {
	const numPages = 2048
	chip := pdl.NewChip(pdl.ScaledFlashParams(256))
	method, err := open(chip, numPages)
	if err != nil {
		b.Fatal(err)
	}
	d, err := workload.NewDriver(method, workload.Config{
		NumPages:          numPages,
		PctChanged:        2,
		NUpdatesTillWrite: 1,
		Seed:              1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Load(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := d.RunParallelUpdateOps(workers, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.OpsPerSecond(), "ops/s")
}

// BenchmarkParallelPDLWritePage measures PDL aggregate update throughput
// at 1, 4, and 16 worker goroutines. The store is opened with a fixed 16
// write-buffer shards for every worker count, so the three points differ
// only in parallelism, not in store configuration.
func BenchmarkParallelPDLWritePage(b *testing.B) {
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkParallelUpdates(b, func(chip *pdl.Chip, numPages int) (pdl.Method, error) {
				return pdl.Open(chip, numPages, pdl.Options{MaxDifferentialSize: 256, Shards: 16})
			}, workers)
		})
	}
}

// BenchmarkParallelOPUWritePage is the page-based baseline under the same
// parallel harness (serialized: OPU is not concurrency-safe).
func BenchmarkParallelOPUWritePage(b *testing.B) {
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkParallelUpdates(b, func(chip *pdl.Chip, numPages int) (pdl.Method, error) {
				return pdl.OpenOPU(chip, numPages)
			}, workers)
		})
	}
}

// BenchmarkParallelIPLWritePage is the log-based baseline under the same
// parallel harness (serialized).
func BenchmarkParallelIPLWritePage(b *testing.B) {
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkParallelUpdates(b, func(chip *pdl.Chip, numPages int) (pdl.Method, error) {
				return pdl.OpenIPL(chip, numPages, pdl.IPLOptions{LogPagesPerBlock: 9 * chip.Params().PagesPerBlock / 64})
			}, workers)
		})
	}
}

// BenchmarkParallelIPUWritePage is the in-place-update baseline under the
// same parallel harness (serialized). IPU rewrites a whole block per page
// write, so b.N iterations are expensive; the harness is identical.
func BenchmarkParallelIPUWritePage(b *testing.B) {
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkParallelUpdates(b, func(chip *pdl.Chip, numPages int) (pdl.Method, error) {
				return pdl.OpenIPU(chip, numPages)
			}, workers)
		})
	}
}

// BenchmarkAblationCheckpointRecovery compares full-scan recovery against
// checkpointed recovery (the paper's further-study extension) on the same
// chip image, reporting the simulated scan cost of each.
func BenchmarkAblationCheckpointRecovery(b *testing.B) {
	opts := pdl.Options{MaxDifferentialSize: 256, CheckpointBlocks: 8}
	chip := pdl.NewChip(pdl.ScaledFlashParams(128))
	store, err := pdl.Open(chip, 2048, opts)
	if err != nil {
		b.Fatal(err)
	}
	size := chip.Params().DataSize
	rng := rand.New(rand.NewSource(1))
	page := make([]byte, size)
	for pid := 0; pid < 2048; pid++ {
		rng.Read(page)
		if err := store.WritePage(uint32(pid), page); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := store.WriteCheckpoint(); err != nil {
		b.Fatal(err)
	}
	// A little post-checkpoint traffic so some blocks are dirty.
	for i := 0; i < 200; i++ {
		pid := uint32(rng.Intn(2048))
		if err := store.ReadPage(pid, page); err != nil {
			b.Fatal(err)
		}
		rng.Read(page[:64])
		if err := store.WritePage(pid, page); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			before := chip.Stats()
			if _, err := pdl.Recover(chip, 2048, opts); err != nil {
				b.Fatal(err)
			}
			d := chip.Stats().Sub(before)
			b.ReportMetric(float64(d.Reads), "scan-reads")
			b.ReportMetric(float64(d.TimeMicros)/1000, "scan-ms")
		}
	})
	b.Run("checkpointed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			before := chip.Stats()
			if _, err := pdl.RecoverWithCheckpoint(chip, 2048, opts); err != nil {
				b.Fatal(err)
			}
			d := chip.Stats().Sub(before)
			b.ReportMetric(float64(d.Reads), "scan-reads")
			b.ReportMetric(float64(d.TimeMicros)/1000, "scan-ms")
		}
	})
}

// BenchmarkAblationWearLeveling compares the greedy and wear-aware
// garbage-collection victim policies (paper footnote 4 calls wear-leveling
// orthogonal): same update workload, reported erase-count spread.
func BenchmarkAblationWearLeveling(b *testing.B) {
	run := func(wearAware bool) (spread int, mean float64, ios int64) {
		chip := pdl.NewChip(pdl.ScaledFlashParams(64))
		store, err := pdl.Open(chip, 1600, pdl.Options{
			MaxDifferentialSize: 256,
			WearAwareGC:         wearAware,
		})
		if err != nil {
			b.Fatal(err)
		}
		size := chip.Params().DataSize
		rng := rand.New(rand.NewSource(1))
		page := make([]byte, size)
		for pid := 0; pid < 1600; pid++ {
			rng.Read(page)
			if err := store.WritePage(uint32(pid), page); err != nil {
				b.Fatal(err)
			}
		}
		// Heavily skewed updates: a hot set hammers the same blocks.
		for i := 0; i < 60000; i++ {
			pid := uint32(rng.Intn(64)) // hot 4% of the database
			if err := store.ReadPage(pid, page); err != nil {
				b.Fatal(err)
			}
			rng.Read(page[:300])
			if err := store.WritePage(pid, page); err != nil {
				b.Fatal(err)
			}
		}
		w := chip.Wear()
		return w.MaxErase - w.MinErase, w.MeanErase, chip.Stats().TimeMicros
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spread, mean, ios := run(false)
			b.ReportMetric(float64(spread), "erase-spread")
			b.ReportMetric(mean, "erase-mean")
			b.ReportMetric(float64(ios)/1000, "io-ms")
		}
	})
	b.Run("wear-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spread, mean, ios := run(true)
			b.ReportMetric(float64(spread), "erase-spread")
			b.ReportMetric(mean, "erase-mean")
			b.ReportMetric(float64(ios)/1000, "io-ms")
		}
	})
}

// BenchmarkAblationMaxDifferentialSize sweeps Max_Differential_Size, the
// design knob the paper exposes ("in practice, we can adjust it according
// to the workload"), at the standard %Changed=2, N=1 workload.
func BenchmarkAblationMaxDifferentialSize(b *testing.B) {
	g := benchGeometry()
	g.MeasureOps = 3000
	for _, maxDiff := range []int{64, 128, 256, 512, 1024, 2048} {
		maxDiff := maxDiff
		b.Run(fmt.Sprintf("maxdiff=%d", maxDiff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.Exp1(g, []bench.MethodSpec{{Kind: bench.KindPDL, Param: maxDiff}})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].Overall, "overall-us/op")
				b.ReportMetric(rows[0].ErasesPerOp*1000, "erases/kop")
			}
		})
	}
}

// BenchmarkPDLRecovery measures crash recovery: the full spare-area scan
// and table reconstruction.
func BenchmarkPDLRecovery(b *testing.B) {
	chip := pdl.NewChip(pdl.ScaledFlashParams(64))
	store, err := pdl.Open(chip, 1024, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	size := chip.Params().DataSize
	rng := rand.New(rand.NewSource(1))
	page := make([]byte, size)
	for pid := 0; pid < 1024; pid++ {
		rng.Read(page)
		if err := store.WritePage(uint32(pid), page); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdl.Recover(chip, 1024, pdl.Options{MaxDifferentialSize: 256}); err != nil {
			b.Fatal(err)
		}
	}
}
