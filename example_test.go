package pdl_test

import (
	"fmt"
	"log"

	"pdl"
)

// Example demonstrates the core loop: a small update costs PDL one
// base-page read and no program at all until the differential write
// buffer fills.
func Example() {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 256, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	page := make([]byte, chip.Params().DataSize)
	copy(page, "hello flash")
	if err := store.WritePage(42, page); err != nil {
		log.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}

	// A small in-place update.
	chip.ResetStats()
	if err := store.ReadPage(42, page); err != nil {
		log.Fatal(err)
	}
	copy(page, "HELLO flash")
	if err := store.WritePage(42, page); err != nil {
		log.Fatal(err)
	}
	s := chip.Stats()
	fmt.Printf("small update: %d reads, %d writes\n", s.Reads, s.Writes)

	if err := store.ReadPage(42, page); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("content: %s\n", page[:11])
	// Output:
	// small update: 2 reads, 0 writes
	// content: HELLO flash
}

// ExampleRecover shows crash recovery: a store rebuilt from the chip alone.
func ExampleRecover() {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 64, pdl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	page := make([]byte, chip.Params().DataSize)
	copy(page, "durable data")
	if err := store.WritePage(7, page); err != nil {
		log.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}

	// Crash: the store (and its in-memory tables) are gone. Recover scans
	// the chip's spare areas and rebuilds them.
	recovered, err := pdl.Recover(chip, 64, pdl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := recovered.ReadPage(7, page); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", page[:12])
	// Output:
	// durable data
}

// ExampleNewPool shows the DBMS-side stack: a buffer pool and heap file
// over a PDL store.
func ExampleNewPool() {
	chip := pdl.NewChip(pdl.ScaledFlashParams(32))
	store, err := pdl.Open(chip, 512, pdl.Options{MaxDifferentialSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := pdl.NewPool(store, 16)
	if err != nil {
		log.Fatal(err)
	}
	heap, err := pdl.NewHeap(pool, 0, 128)
	if err != nil {
		log.Fatal(err)
	}
	rid, err := heap.Insert([]byte("a record"))
	if err != nil {
		log.Fatal(err)
	}
	if err := pool.Flush(); err != nil {
		log.Fatal(err)
	}
	rec, err := heap.Get(rid, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", rec)
	// Output:
	// a record
}
